// check_hazard — the thesis tool's command-line interface (Section 7.3.1),
// grown into a batch driver: one process pipelines any number of designs
// through the parallel flow on one shared thread pool.
//
// Usage:
//   check_hazard STG.g [EQN.eqn]                      # legacy single design
//   check_hazard [options] DESIGN.g [DESIGN2.g ...]   # batch
//
// Options:
//   --jobs N, -j N   parallel (component × gate) jobs and concurrent
//                    designs; 0 = one per hardware thread, default 1
//   --json           structured JSON report (an array in batch mode)
//   --eqn FILE       restricted-EQN netlist (single design only); without
//                    it a DESIGN.eqn sibling is used when present, else the
//                    circuit is synthesized from the STG's state graph
//   --bench NAME     add an embedded benchmark ('all' = the whole suite)
//   --list-benchmarks
//   --dump-bench DIR write the embedded suite as .g/.eqn files into DIR
//
// Text output per design prints the adversary-path conditions before
// relaxation and the relative timing constraints after, in the format of
// the thesis tool:
//
//   The timing constraints in the original specification are: ...
//   The timing constraints for this circuit to work correctly are: ...
//   The running time for this program is ... seconds
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "base/thread_pool.hpp"
#include "benchdata/benchmarks.hpp"
#include "core/report.hpp"
#include "svc/analysis_service.hpp"

#include "design_io.hpp"  // shared tools helpers (sibling of this file)

namespace {

struct DesignInput {
  std::string name;  // display name: file path or benchmark name
  std::string astg;  // implementation STG text
  std::string eqn;   // optional netlist text; empty -> synthesize
};

struct DesignOutcome {
  bool ok = false;
  std::string text;   // rendered report (text mode)
  std::string json;   // rendered report (json mode)
  std::string error;  // failure message when !ok
};

struct CliOptions {
  int jobs = 1;
  bool json = false;
  std::string eqn_path;
  std::vector<std::string> bench_names;
  std::vector<std::string> files;
};

using sitime::tools::read_file;

int usage() {
  std::fprintf(
      stderr,
      "usage: check_hazard STG.g [EQN.eqn]\n"
      "       check_hazard [--jobs N] [--json] [--eqn FILE] [--bench NAME]\n"
      "                    [DESIGN.g ...]\n"
      "       check_hazard --list-benchmarks | --dump-bench DIR\n");
  return 2;
}

/// Runs one design through the analysis service (verify + derive share one
/// FlowDecomposition there, and repeated designs in a batch are answered
/// from the content-addressed cache). `legacy` reproduces the original
/// tool's stderr side channel (synthesized netlist) for the single-design
/// invocation.
DesignOutcome process_design(const DesignInput& input,
                             const CliOptions& options,
                             sitime::svc::AnalysisService& service,
                             bool legacy) {
  using namespace sitime;
  DesignOutcome outcome;
  svc::AnalysisRequest request;
  request.name = input.name;
  request.astg = input.astg;
  request.eqn = input.eqn;
  request.mode = svc::RequestMode::derive;
  const svc::AnalysisResponse response = service.analyze(request);
  // The original tool printed the synthesized netlist right after circuit
  // construction — before the flow could fail — so the dump must appear
  // even for !ok responses (the service reports the netlist as soon as it
  // is synthesized; it is empty only when parsing/synthesis itself threw).
  if (legacy && input.eqn.empty() && response.netlist_eqn != nullptr)
    std::fprintf(stderr, "synthesized netlist:\n%s\n",
                 response.netlist_eqn->c_str());
  if (!response.ok) {
    outcome.error = response.error;
    return outcome;
  }
  if (!response.speed_independent) {
    outcome.error = "the circuit is not speed independent (gate '" +
                    response.verify_offender +
                    "' violates timing conformance under the isochronic "
                    "fork)";
    return outcome;
  }
  // The cached report body is name-free and the service memoizes its
  // renderings; serve those verbatim, prefixing this request's display
  // name and cache provenance where the format carries them (the JSON
  // head; the text layouts are name-free by construction). A pure cache
  // hit re-renders nothing.
  if (response.rendered != nullptr) {
    if (options.json)
      outcome.json = core::json_report_head(input.name, response.key,
                                            response.cache_state,
                                            response.phases_run) +
                     response.rendered->json_body;
    else if (legacy)
      outcome.text = response.rendered->thesis;
    else
      outcome.text = response.rendered->text;
    outcome.ok = true;
    return outcome;
  }
  // Responses without memoized renderings (a single-flight bypass of an
  // older service): stamp provenance onto a copy and render here.
  core::FlowReport report = *response.report;
  report.design = input.name;
  report.cache_state = response.cache_state;
  report.phases_run = response.phases_run;
  if (options.json)
    outcome.json = core::to_json(report);
  else if (legacy)
    outcome.text = core::thesis_report_text(report);
  else
    outcome.text = core::to_text(report);
  outcome.ok = true;
  return outcome;
}

int list_benchmarks() {
  for (const auto& bench : sitime::benchdata::all_benchmarks())
    std::printf("%s%s\n", bench.name.c_str(),
                bench.eqn.empty() ? " (synthesized)" : "");
  return 0;
}

int dump_benchmarks(const std::string& directory) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  for (const auto& bench : sitime::benchdata::all_benchmarks()) {
    const fs::path base = fs::path(directory) / bench.name;
    std::ofstream g(base.string() + ".g");
    g << bench.astg;
    g.close();  // flush so deferred write errors (full disk) surface here
    if (!g) {
      std::fprintf(stderr, "error: cannot write '%s.g'\n",
                   base.string().c_str());
      return 1;
    }
    if (!bench.eqn.empty()) {
      std::ofstream eqn(base.string() + ".eqn");
      eqn << bench.eqn;
      eqn.close();
      if (!eqn) {
        std::fprintf(stderr, "error: cannot write '%s.eqn'\n",
                     base.string().c_str());
        return 1;
      }
    }
  }
  std::printf("wrote %zu designs to %s\n",
              sitime::benchdata::all_benchmarks().size(), directory.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sitime;
  CliOptions options;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](const char* flag) -> std::string {
      if (++i >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return args[i];
    };
    if (arg == "--jobs" || arg == "-j") {
      const std::string text = value("--jobs");
      char* end = nullptr;
      const long jobs = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || jobs < 0 || jobs > 4096) {
        std::fprintf(stderr, "error: --jobs needs an integer in [0, 4096]\n");
        return 2;
      }
      options.jobs = static_cast<int>(jobs);
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--eqn") {
      options.eqn_path = value("--eqn");
    } else if (arg == "--bench") {
      options.bench_names.push_back(value("--bench"));
    } else if (arg == "--list-benchmarks") {
      return list_benchmarks();
    } else if (arg == "--dump-bench") {
      return dump_benchmarks(value("--dump-bench"));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      options.files.push_back(arg);
    }
  }

  // Legacy form: exactly two positionals where the second is not another
  // design (.g). The original tool accepted any filename as its netlist
  // argument, so only a .g suffix routes the pair into batch mode.
  const auto is_design = [](const std::string& path) {
    return path.size() >= 2 &&
           path.compare(path.size() - 2, 2, ".g") == 0;
  };
  const bool legacy_eqn = options.files.size() == 2 &&
                          options.eqn_path.empty() &&
                          !is_design(options.files[1]);
  if (legacy_eqn) {
    options.eqn_path = options.files[1];
    options.files.pop_back();
  }

  std::vector<DesignInput> designs;
  try {
    for (const std::string& path : options.files) {
      DesignInput input;
      input.name = path;
      input.astg = read_file(path);
      // Sibling netlist autodetect (DESIGN.g -> DESIGN.eqn) is a batch
      // convenience; the legacy single-file invocation keeps the original
      // tool's contract (synthesize unless an EQN is passed explicitly).
      const bool batch_mode = options.json || !options.bench_names.empty() ||
                              options.files.size() >= 2;
      if (options.eqn_path.empty() && batch_mode) {
        const std::string sibling = tools::sibling_eqn_path(path);
        if (!sibling.empty()) {
          input.eqn = read_file(sibling);
          std::fprintf(stderr, "note: using sibling netlist '%s' for '%s'\n",
                       sibling.c_str(), path.c_str());
        }
      }
      designs.push_back(std::move(input));
    }
    for (const std::string& name : options.bench_names) {
      if (name == "all") {
        for (const auto& bench : benchdata::all_benchmarks())
          designs.push_back(DesignInput{bench.name, bench.astg, bench.eqn});
      } else {
        const auto& bench = benchdata::benchmark(name);
        designs.push_back(DesignInput{bench.name, bench.astg, bench.eqn});
      }
    }
    // --eqn overrides the netlist of the (single) design, wherever it came
    // from — a file or an embedded benchmark.
    if (!options.eqn_path.empty()) {
      if (designs.size() != 1) {
        std::fprintf(stderr, "error: --eqn applies to a single design\n");
        return 2;
      }
      designs[0].eqn = read_file(options.eqn_path);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  if (designs.empty()) return usage();

  const bool legacy = designs.size() == 1 && !options.json &&
                      options.bench_names.empty();
  base::ThreadPool* pool =
      options.jobs == 1 ? nullptr : &base::ThreadPool::shared();

  // One resident service per invocation: verify + derive share a
  // decomposition per design, and repeated designs (the same file listed
  // twice, a file matching an embedded benchmark) coalesce on its cache.
  svc::ServiceOptions service_options;
  service_options.jobs = options.jobs;
  service_options.pool = pool;
  svc::AnalysisService service(service_options);

  // The designs pipeline through the same pool the per-design job graphs
  // run on; results are collected per slot and printed in input order.
  std::vector<DesignOutcome> outcomes(designs.size());
  auto run_design = [&](int index) {
    outcomes[index] =
        process_design(designs[index], options, service, legacy);
  };
  if (pool == nullptr || designs.size() == 1) {
    for (int i = 0; i < static_cast<int>(designs.size()); ++i)
      run_design(i);
  } else {
    pool->parallel_for(0, static_cast<int>(designs.size()), run_design,
                       /*grain=*/1,
                       /*max_tasks=*/options.jobs);
  }

  bool all_ok = true;
  if (options.json) {
    std::printf("[\n");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const DesignOutcome& outcome = outcomes[i];
      if (outcome.ok)
        std::printf("%s", outcome.json.c_str());
      else
        std::printf("{\"design\": \"%s\", \"error\": \"%s\"}",
                    core::json_escape(designs[i].name).c_str(),
                    core::json_escape(outcome.error).c_str());
      std::printf(i + 1 < outcomes.size() ? ",\n" : "\n");
      all_ok = all_ok && outcome.ok;
    }
    std::printf("]\n");
  } else {
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const DesignOutcome& outcome = outcomes[i];
      if (!legacy)
        std::printf("== %s ==\n", designs[i].name.c_str());
      if (outcome.ok)
        std::printf("%s", outcome.text.c_str());
      else if (legacy)  // byte-compatible with the original tool's stderr
        std::fprintf(stderr, "error: %s\n", outcome.error.c_str());
      else
        std::fprintf(stderr, "error: %s: %s\n", designs[i].name.c_str(),
                     outcome.error.c_str());
      if (!legacy && i + 1 < outcomes.size()) std::printf("\n");
      all_ok = all_ok && outcome.ok;
    }
  }
  return all_ok ? 0 : 1;
}
