// check_hazard — the thesis tool's command-line interface (Section 7.3.1).
//
// Usage:
//   check_hazard STG.g [EQN.eqn]
//
// Reads an implementation STG in the astg format and, optionally, a
// restricted-EQN netlist. Without a netlist the circuit is synthesized from
// the STG's state graph (one atomic complex gate per non-input signal).
// Prints the adversary-path conditions before relaxation and the relative
// timing constraints after, in the format of the thesis tool:
//
//   The timing constraints in the original specification are: ...
//   The timing constraints for this circuit to work correctly are: ...
//   The running time for this program is ... seconds
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>

#include "base/error.hpp"
#include "circuit/circuit.hpp"
#include "core/flow.hpp"
#include "sg/state_graph.hpp"
#include "stg/astg.hpp"
#include "synth/synthesis.hpp"

namespace {

std::string read_file(const char* path) {
  std::ifstream stream(path);
  if (!stream) sitime::fail(std::string("cannot open '") + path + "'");
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sitime;
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: check_hazard STG.g [EQN.eqn]\n");
    return 2;
  }
  try {
    const stg::Stg stg = stg::parse_astg(read_file(argv[1]));
    circuit::Circuit circuit = [&] {
      if (argc == 3)
        return circuit::Circuit::from_equations(&stg.signals,
                                                read_file(argv[2]));
      const sg::GlobalSg global = sg::build_global_sg(stg);
      return circuit::Circuit::from_synthesis(&stg.signals,
                                              synth::synthesize(stg, global));
    }();
    if (argc == 2)
      std::fprintf(stderr, "synthesized netlist:\n%s\n",
                   circuit.to_eqn().c_str());
    const std::string not_si = core::verify_speed_independent(stg, circuit);
    if (!not_si.empty()) {
      std::fprintf(stderr,
                   "error: the circuit is not speed independent (gate '%s' "
                   "violates timing conformance under the isochronic fork)\n",
                   not_si.c_str());
      return 1;
    }
    const core::FlowResult result =
        core::derive_timing_constraints(stg, circuit);
    std::printf("%s", core::format_report(result, stg.signals).c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
