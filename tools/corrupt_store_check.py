#!/usr/bin/env python3
"""Corruption-robustness sweep of the persistent warm store (--cache-dir).

Usage: corrupt_store_check.py SERVE_BINARY DESIGN_DIR

Serves the dumped suite cold on a server with --cache-dir, then damages
EVERY store file (round-robin: bit-flip in the payload, truncate to half,
zero-length rewrite) and restarts. The contract under test, driven under
ASan in CI: a server booting over an arbitrarily damaged store must
  - never crash and never serve a wrong answer,
  - reject and DELETE every damaged file (disk_load_corrupt == files,
    disk_loads == 0),
  - answer every request cold ("fresh") with report JSON byte-identical
    to the undamaged pass, and
  - re-spill the store as it answers, so a THIRD boot serves everything
    from disk again (all "hit", disk_loads == designs).
"""
import glob
import json
import shutil
import subprocess
import sys
import tempfile


def run_serve(serve, cache_dir, requests):
    command = [
        serve, "--jobs", "2", "--admit", "1", "--cache-dir", cache_dir,
    ]
    text = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run(
        command, input=text, capture_output=True, text=True, check=True
    )
    lines = [json.loads(line) for line in proc.stdout.strip().split("\n")]
    assert len(lines) == len(requests), (len(lines), len(requests))
    bad = [l for l in lines if not l["ok"]]
    assert not bad, bad
    return lines


def damage(path, mode):
    with open(path, "rb") as f:
        bytes_ = bytearray(f.read())
    if mode == 0:  # bit flip inside the payload (past the 24-byte header)
        at = max(24, len(bytes_) // 2)
        bytes_[at] ^= 0x10
    elif mode == 1:  # truncation
        bytes_ = bytes_[: len(bytes_) // 2]
    else:  # zero-length rewrite
        bytes_ = bytearray()
    with open(path, "wb") as f:
        f.write(bytes_)


def main() -> int:
    serve = sys.argv[1]
    design_dir = sys.argv[2]
    designs = sorted(glob.glob(design_dir + "/*.g"))
    assert designs, f"no .g designs in {design_dir}"
    suite = [{"id": i, "design": path} for i, path in enumerate(designs)]

    cache_dir = tempfile.mkdtemp(prefix="sitime_corrupt_")
    try:
        # Pass 1: populate the store and record the reference bytes.
        first = run_serve(serve, cache_dir, suite)
        reference = {l["id"]: l["report"] for l in first}
        files = sorted(glob.glob(cache_dir + "/*.sit"))
        assert len(files) == len(designs), (len(files), len(designs))

        # Damage every file, a different way each.
        for i, path in enumerate(files):
            damage(path, i % 3)

        # Pass 2: boot over the wreckage. Everything must be rejected,
        # deleted, and answered cold — byte-identically, without a crash.
        second = run_serve(serve, cache_dir, suite)
        not_fresh = [
            (l["id"], l["cache"]) for l in second if l["cache"] != "fresh"
        ]
        assert not not_fresh, f"damaged-store pass not all cold: {not_fresh}"
        stats = second[-1]["cache_stats"]
        assert stats["disk_loads"] == 0, stats
        assert stats["disk_load_corrupt"] == len(files), stats
        assert stats["disk_writes"] == len(designs), stats  # re-spilled
        for line in second:
            assert line["report"] == reference[line["id"]], (
                f"report drift after corruption for {line['id']}"
            )

        # Pass 3: the re-spilled store must serve everything warm again.
        third = run_serve(serve, cache_dir, suite)
        not_hit = [
            (l["id"], l["cache"]) for l in third if l["cache"] != "hit"
        ]
        assert not not_hit, f"re-spilled store not all hits: {not_hit}"
        stats = third[-1]["cache_stats"]
        assert stats["disk_loads"] == len(designs), stats
        assert stats["disk_load_corrupt"] == 0, stats
        for line in third:
            assert line["report"] == reference[line["id"]], (
                f"report drift after re-spill for {line['id']}"
            )

        print(
            f"corrupt store OK: {len(files)} files damaged "
            f"(flip/truncate/zero), all rejected+deleted, "
            f"{len(designs)} designs served cold byte-identically, "
            f"store re-spilled and served warm on the third boot"
        )
        return 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
