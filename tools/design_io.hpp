// File-loading helpers shared by the sitime tools (check_hazard,
// sitime_serve): whole-file reads and the DESIGN.g -> DESIGN.eqn sibling
// netlist convention. The implementations live in src/svc/server (the
// request-building path of svc::Server uses them too); these aliases keep
// the tools on the same definitions so the drivers cannot drift.
#pragma once

#include <string>

#include "svc/server.hpp"

namespace sitime::tools {

inline std::string read_file(const std::string& path) {
  return svc::read_text_file(path);
}

/// Path of the sibling netlist of a design file (DESIGN.g -> DESIGN.eqn),
/// or "" when none exists.
inline std::string sibling_eqn_path(const std::string& design_path) {
  return svc::sibling_netlist_path(design_path);
}

}  // namespace sitime::tools
