// File-loading helpers shared by the sitime tools (check_hazard,
// sitime_serve): whole-file reads and the DESIGN.g -> DESIGN.eqn sibling
// netlist convention, kept in one place so the two drivers cannot drift.
#pragma once

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "base/error.hpp"

namespace sitime::tools {

inline std::string read_file(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) sitime::fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

/// Path of the sibling netlist of a design file (DESIGN.g -> DESIGN.eqn),
/// or "" when none exists.
inline std::string sibling_eqn_path(const std::string& design_path) {
  std::filesystem::path sibling(design_path);
  sibling.replace_extension(".eqn");
  std::error_code ignored;
  if (!std::filesystem::exists(sibling, ignored)) return "";
  return sibling.string();
}

}  // namespace sitime::tools
