#!/usr/bin/env python3
"""Drive sitime_serve and validate its observability surface end to end.

Usage: metrics_check.py SERVE_BINARY

One stdio server (--slow-ms 1) gets a cold pass over embedded benchmarks,
a traced request, a warm repeat pass, and a {"metrics": true} /
{"stats": true} scrape pair after each pass. The checks:

  - every scrape parses as Prometheus text exposition format 0.0.4
    (HELP/TYPE headers, sample syntax, a TYPE for every sample family);
  - histogram buckets are cumulative in `le` order and end at
    +Inf == _count;
  - counters never move backwards between the two scrapes;
  - the traffic left its marks: non-zero per-phase latency histogram
    counts, non-zero queue-wait observations, and design-cache
    hit/miss counters that agree exactly with the {"stats": true}
    snapshot taken next to the scrape;
  - the traced request returns spans naming every phase run, fitting
    inside the total handling time;
  - --slow-ms 1 logged at least one span breakdown to stderr;
  - `sitime_serve --metrics` prints a one-shot catalog that passes the
    same syntax validation.
"""
import json
import math
import re
import subprocess
import sys

BENCHES = ["adfast", "ebergen", "fifo", "chu133", "converta"]

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(\{[a-zA-Z0-9_\"=,.+\- ]*\})?"         # optional {labels}
    r" (-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|Inf)|NaN|\+Inf)$"
)
HEADER_RE = re.compile(
    r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$"
)


def family_of(name, typed):
    """The family a sample belongs to: histogram samples carry a
    _bucket/_sum/_count suffix on top of the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in typed:
            return name[: -len(suffix)]
    return name


def parse_exposition(text):
    """Validates the text format; returns (types, samples) where samples
    maps (name, labels) -> float value."""
    typed = {}
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            header = HEADER_RE.match(line)
            assert header, f"malformed comment line: {line!r}"
            if header.group(1) == "TYPE":
                kind = (header.group(3) or "").strip()
                assert kind in ("counter", "gauge", "histogram"), line
                assert header.group(2) not in typed, f"duplicate TYPE: {line!r}"
                typed[header.group(2)] = kind
            continue
        sample = SAMPLE_RE.match(line)
        assert sample, f"malformed sample line: {line!r}"
        name, labels = sample.group(1), sample.group(2) or ""
        family = family_of(name, typed)
        assert family in typed, f"sample without a # TYPE: {line!r}"
        key = (name, labels)
        assert key not in samples, f"duplicate sample: {line!r}"
        value = sample.group(3)
        samples[key] = math.inf if value in ("+Inf", "Inf") else float(value)
    check_histograms(typed, samples)
    return typed, samples


def check_histograms(typed, samples):
    """Buckets cumulative and non-decreasing in le order, +Inf == _count."""
    series = {}  # (family, labels-minus-le) -> [(le, value)]
    for (name, labels), value in samples.items():
        if not name.endswith("_bucket"):
            continue
        family = name[: -len("_bucket")]
        assert typed.get(family) == "histogram", name
        le = re.search(r'le="([^"]+)"', labels)
        assert le, f"bucket without le: {name}{labels}"
        bound = math.inf if le.group(1) == "+Inf" else float(le.group(1))
        rest = re.sub(r',?le="[^"]+"', "", labels).replace("{}", "")
        series.setdefault((family, rest), []).append((bound, value))
    assert series, "no histogram buckets in the exposition"
    for (family, rest), buckets in series.items():
        buckets.sort()
        assert buckets[-1][0] == math.inf, f"{family}{rest} lacks +Inf"
        values = [v for _, v in buckets]
        assert values == sorted(values), (
            f"non-cumulative buckets for {family}{rest}: {values}"
        )
        count = samples.get((family + "_count", rest))
        assert count is not None, f"{family}{rest} lacks _count"
        assert values[-1] == count, (
            f"+Inf bucket != count for {family}{rest}: {values[-1]} {count}"
        )


def counter_value(samples, family, label_re=""):
    """Sum of a counter family's samples whose labels match label_re."""
    return sum(
        value
        for (name, labels), value in samples.items()
        if name == family and re.search(label_re, labels)
    )


def check_spans(traced):
    spans = traced.get("spans")
    assert spans, f"traced response has no spans: {traced}"
    names = [span["name"] for span in spans]
    assert names[0] == "queue_wait", names
    assert spans[0]["start"] == 0.0, spans[0]
    for phase in traced["phases_run"].split("+"):
        assert phase in names, (phase, names)
    # Spans fit inside the total handling time (queue wait + service).
    total = spans[0]["seconds"] + traced["seconds"] + 1e-5
    for span in spans:
        assert span["start"] + span["seconds"] <= total, (span, total)
    nested = [span for span in spans if span.get("in")]
    assert any(span["name"] == "expand" for span in nested), names


def main():
    serve = sys.argv[1]

    requests = []
    requests += [{"id": f"c-{b}", "design": {"bench": b}} for b in BENCHES]
    requests.append(
        {"id": "t", "design": {"bench": "vbe5c"}, "trace_spans": True}
    )
    requests.append({"id": "m1", "metrics": True})
    requests.append({"id": "s1", "stats": True})
    requests += [{"id": f"h-{b}", "design": {"bench": b}} for b in BENCHES]
    requests.append({"id": "m2", "metrics": True})
    requests.append({"id": "s2", "stats": True})

    # --admit 1 keeps handling strictly sequential, so each scrape sees
    # everything sent before it and the warm pass is all plain hits.
    proc = subprocess.run(
        [serve, "--jobs", "2", "--admit", "1", "--slow-ms", "1"],
        input="".join(json.dumps(r) + "\n" for r in requests),
        capture_output=True,
        text=True,
        check=True,
    )
    lines = [json.loads(line) for line in proc.stdout.strip().split("\n")]
    assert len(lines) == len(requests), (len(lines), len(requests))
    by_id = {line["id"]: line for line in lines}
    bad = [line for line in lines if not line["ok"]]
    assert not bad, bad

    # Both scrapes are well-formed expositions; counters never regress.
    typed1, scrape1 = parse_exposition(by_id["m1"]["metrics"])
    typed2, scrape2 = parse_exposition(by_id["m2"]["metrics"])
    for key, value in scrape1.items():
        family = family_of(key[0], typed1)
        if typed1[family] != "counter" and not key[0].endswith(
            ("_count", "_sum", "_bucket")
        ):
            continue
        assert key in scrape2, f"series vanished between scrapes: {key}"
        assert scrape2[key] >= value - 1e-9, (
            f"counter went backwards: {key} {value} -> {scrape2[key]}"
        )

    # The traffic left its marks in the right families.
    phase_runs = counter_value(scrape2, "sitime_phase_seconds_count")
    assert phase_runs > 0, "no per-phase histogram observations"
    cold_runs = counter_value(
        scrape2, "sitime_phase_seconds_count", r'source="cold"'
    )
    assert cold_runs > 0, "cold pass recorded no cold-source observations"
    # Every line (control requests included) waits in the admission
    # queue; the final stats line had not been dequeued when the second
    # scrape rendered.
    queue_waits = counter_value(scrape2, "sitime_queue_wait_seconds_count")
    assert queue_waits == len(requests) - 1, (queue_waits, len(requests))

    # The registry and the legacy stats snapshot agree exactly — they
    # read the same counters.
    stats2 = by_id["s2"]["stats"]
    hits = counter_value(
        scrape2, "sitime_design_cache_requests_total", r'outcome="hit"'
    )
    misses = counter_value(
        scrape2, "sitime_design_cache_requests_total", r'outcome="miss"'
    )
    assert hits == stats2["hits"] == len(BENCHES), (hits, stats2)
    assert misses == stats2["misses"] == len(BENCHES) + 1, (misses, stats2)
    assert by_id["s2"]["uptime_seconds"] >= 0.0, by_id["s2"]
    assert by_id["s2"]["queue_depth"] == 0, by_id["s2"]

    # The decomposition-cache level: the cold pass decomposed each of the
    # six distinct STGs once (all misses, all retained); the warm pass is
    # answered at the design level and never reaches the decompose phase,
    # so the counters sit exactly where the cold pass left them — and the
    # registry agrees with the snapshot.
    decomp_hits = counter_value(scrape2, "sitime_decomp_cache_hits_total")
    decomp_misses = counter_value(
        scrape2, "sitime_decomp_cache_misses_total"
    )
    assert decomp_hits == stats2["decomp_hits"] == 0, (decomp_hits, stats2)
    assert decomp_misses == stats2["decomp_misses"] == len(BENCHES) + 1, (
        decomp_misses,
        stats2,
    )
    decomp_entries = counter_value(scrape2, "sitime_decomp_cache_entries")
    assert decomp_entries == stats2["decomp_entries"] == len(BENCHES) + 1, (
        decomp_entries,
        stats2,
    )

    # The persistent-store families are always registered (zero-valued
    # gauge-reads of the disabled store here — this server has no
    # --cache-dir, so nothing may count).
    for family in (
        "sitime_disk_store_writes_total",
        "sitime_disk_store_write_errors_total",
        "sitime_disk_store_loads_total",
        "sitime_disk_store_load_skips_total",
        "sitime_disk_store_load_corrupt_total",
    ):
        assert family in typed2, f"missing disk-store family: {family}"
        assert counter_value(scrape2, family) == 0, (family, scrape2)
    assert stats2["disk_writes"] == stats2["disk_loads"] == 0, stats2

    # State-graph build latency is observed by configured mode; the flows
    # above built local SGs, so the histogram family must exist and hold
    # at least one observation (whatever the serial/parallel split under
    # --jobs 2).
    assert typed2.get("sitime_sg_build_seconds") == "histogram", typed2
    sg_builds = counter_value(scrape2, "sitime_sg_build_seconds_count")
    assert sg_builds > 0, "no sg build observations"

    check_spans(by_id["t"])

    # Cold flow runs take ≥ 1 ms, so --slow-ms 1 must have logged some.
    assert "slow request" in proc.stderr, proc.stderr

    # The one-shot catalog passes the same syntax validation.
    catalog = subprocess.run(
        [serve, "--metrics"], capture_output=True, text=True, check=True
    )
    typed_catalog, _ = parse_exposition(catalog.stdout)
    assert "sitime_phase_seconds" in typed_catalog, typed_catalog
    assert "sitime_sg_build_seconds" in typed_catalog, typed_catalog
    assert "sitime_decomp_cache_hits_total" in typed_catalog, typed_catalog
    assert "sitime_disk_store_loads_total" in typed_catalog, typed_catalog

    print(
        f"metrics OK: {len(BENCHES)} designs cold+warm, 2 scrapes "
        f"well-formed ({len(typed2)} families), counters monotone, "
        f"{int(phase_runs)} phase observations, spans traced, "
        f"slow-request log seen, one-shot catalog valid"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
