#!/usr/bin/env python3
"""Replay a dumped design directory through sitime_serve, twice, and assert
the cache contract: the first pass runs every flow fresh, the second pass is
answered entirely from the design cache with byte-identical report JSON.

Usage: serve_replay_check.py SERVE_BINARY DESIGN_DIR [--warm] [--mutate]

With --warm the server preloads the embedded benchmark suite first, so BOTH
passes must be all cache hits (the dumped directory is that same suite).

With --mutate the replay exercises the two finer cache levels instead:
after replaying the suite once, every design with a dumped netlist is
re-sent once per gate with that gate's equation edited (its first cube
duplicated — same function, different text, so the whole-design key misses
while the STG and every other gate's job keys stay put). The edited passes
must all run "fresh" (no design-cache hit), must each hit the STG-keyed
decomposition cache (decomp_hits grows by exactly the number of edits and
decompose_runs does not move — the netlist-only edits never rebuild the
global SG), must grow the gate-slice hit counter, and must produce reports
byte-identical to the same edits on a second, cold server process.
"""
import glob
import json
import subprocess
import sys


def run_serve(serve, requests, warm=False):
    """One sitime_serve process over `requests`; returns parsed lines."""
    command = [serve, "--jobs", "2", "--admit", "1"] + (
        ["--warm"] if warm else []
    )
    text = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run(
        command, input=text, capture_output=True, text=True, check=True
    )
    lines = [json.loads(line) for line in proc.stdout.strip().split("\n")]
    assert len(lines) == len(requests), (len(lines), len(requests))
    bad = [l for l in lines if not l["ok"]]
    assert not bad, bad
    return lines


def duplicate_first_cube(eqn, gate):
    """The editor's keystroke: duplicate the first cube of `gate`'s
    equation. The gate computes the same function, so the constraints are
    unchanged, but the canonical netlist text (and the whole-design key)
    differs."""
    lhs = gate + " = "
    at = eqn.index(lhs)
    rhs = at + len(lhs)
    plus = eqn.find("+", rhs)
    semi = eqn.index(";", rhs)
    end = semi if plus == -1 or semi < plus else plus
    first = eqn[rhs:end].strip()
    return eqn[:rhs] + first + " + " + eqn[rhs:]


def mutate_check(serve, design_dir):
    designs = sorted(glob.glob(design_dir + "/*.g"))
    assert designs, f"no .g designs in {design_dir}"
    suite = [{"id": i, "design": path} for i, path in enumerate(designs)]

    edits = []
    for eqn_path in sorted(glob.glob(design_dir + "/*.eqn")):
        with open(eqn_path) as f:
            eqn = f.read()
        with open(eqn_path[:-4] + ".g") as f:
            astg = f.read()
        gates = [
            line.split(" = ")[0]
            for line in eqn.splitlines()
            if " = " in line
        ]
        assert gates, f"no equations in {eqn_path}"
        for gate in gates:
            edits.append(
                {
                    "id": len(suite) + len(edits),
                    "design": {
                        "name": f"{eqn_path}#edit-{gate}",
                        "astg": astg,
                        "eqn": duplicate_first_cube(eqn, gate),
                    },
                }
            )
    assert edits, f"no dumped netlists (*.eqn) to mutate in {design_dir}"

    # Warm server: suite first (primes both cache levels), then the edits.
    lines = run_serve(serve, suite + edits)
    replay, edited = lines[: len(suite)], lines[len(suite):]
    # Every edit must MISS the design cache (the text changed) ...
    not_fresh = [
        (l.get("id"), l["cache"]) for l in edited if l["cache"] != "fresh"
    ]
    assert not not_fresh, f"edited designs not fresh: {not_fresh}"
    # ... while its unchanged gates hit the slice cache underneath.
    primed = replay[-1]["cache_stats"]
    after = edited[-1]["cache_stats"]
    gate_hits = after["gate_hits"] - primed["gate_hits"]
    assert gate_hits > 0, (primed, after)
    # The STG never changed, so EVERY edit reuses the suite pass's cached
    # decomposition — and no edit rebuilds the global SG (decompose_runs
    # counts actual decompose executions, and it must not move).
    decomp_hits = after["decomp_hits"] - primed["decomp_hits"]
    assert decomp_hits == len(edits), (decomp_hits, len(edits), after)
    assert after["decompose_runs"] == primed["decompose_runs"], (
        primed["decompose_runs"],
        after["decompose_runs"],
    )

    # Cold server: the same edits with nothing primed. The reports must be
    # byte-identical — mixing cached and fresh slices can never change an
    # output byte.
    cold = run_serve(serve, edits)
    for warm_line, cold_line in zip(edited, cold):
        assert warm_line["key"] == cold_line["key"], warm_line.get("id")
        assert warm_line["report"] == cold_line["report"], (
            f"report drift for edit {warm_line.get('id')}"
        )

    print(
        f"serve mutate OK: {len(suite)} designs replayed, "
        f"{len(edits)} single-gate edits all fresh with {decomp_hits} "
        f"decomposition reuses (no global-SG rebuild) and {gate_hits} "
        f"gate-slice hits, reports byte-identical to a cold server"
    )
    return 0


def main() -> int:
    serve = sys.argv[1]
    design_dir = sys.argv[2]
    warm = "--warm" in sys.argv[3:]
    if "--mutate" in sys.argv[3:]:
        return mutate_check(serve, design_dir)

    designs = sorted(glob.glob(design_dir + "/*.g"))
    assert designs, f"no .g designs in {design_dir}"
    requests = "".join(
        json.dumps({"id": i, "design": path}) + "\n"
        for i, path in enumerate(designs * 2)
    )

    # --admit 1 keeps the two passes strictly sequential so every repeat is
    # a plain "hit" (concurrent admission could legitimately coalesce).
    command = [serve, "--jobs", "2", "--admit", "1"] + (
        ["--warm"] if warm else []
    )
    proc = subprocess.run(
        command, input=requests, capture_output=True, text=True, check=True
    )
    lines = [json.loads(line) for line in proc.stdout.strip().split("\n")]
    assert len(lines) == 2 * len(designs), (len(lines), len(designs))
    bad = [l for l in lines if not l["ok"]]
    assert not bad, bad

    first, second = lines[: len(designs)], lines[len(designs):]
    if warm:
        not_hit = [(l["design"], l["cache"]) for l in first if l["cache"] != "hit"]
        assert not not_hit, f"warm pass 1 not all hits: {not_hit}"
    else:
        not_fresh = [
            (l["design"], l["cache"]) for l in first if l["cache"] != "fresh"
        ]
        assert not not_fresh, f"pass 1 not all fresh: {not_fresh}"
    not_hit = [(l["design"], l["cache"]) for l in second if l["cache"] != "hit"]
    assert not not_hit, f"pass 2 not all cache hits: {not_hit}"

    for a, b in zip(first, second):
        assert a["key"] == b["key"], (a["design"], a["key"], b["key"])
        assert a["report"] == b["report"], f"report drift for {a['design']}"
        assert a["speed_independent"] and b["speed_independent"], a["design"]

    # The dumped directory IS the embedded suite, so warming runs each
    # design exactly once and both replay passes must hit; without warming
    # pass 1 is the only source of misses.
    stats = second[-1]["cache_stats"]
    assert stats["misses"] == len(designs), stats
    assert stats["hits"] == len(designs) * (2 if warm else 1), stats

    print(
        f"serve replay OK: {len(designs)} designs x2, "
        f"second pass all cache hits, reports byte-identical "
        f"(warm={str(warm).lower()})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
