#!/usr/bin/env python3
"""Replay a dumped design directory through sitime_serve, twice, and assert
the cache contract: the first pass runs every flow fresh, the second pass is
answered entirely from the design cache with byte-identical report JSON.

Usage: serve_replay_check.py SERVE_BINARY DESIGN_DIR
           [--warm] [--mutate] [--cache-dir [DIR]]

With --warm the server preloads the embedded benchmark suite first, so BOTH
passes must be all cache hits (the dumped directory is that same suite).

With --cache-dir the replay exercises the restart-survival contract of the
persistent warm store instead: serve the suite cold on a server started
with --cache-dir, SIGKILL it the moment the last response is read (a
crash, not a drain — the spill must already be durable), then start a
fresh server over the same directory and assert the second pass is served
entirely from disk (every response a "hit", disk_loads == designs, zero
decompose/verify/derive re-runs) with report JSON byte-identical to the
cold pass. DIR is optional; without it a temp directory is used and
removed afterwards.

With --mutate the replay exercises the two finer cache levels instead:
after replaying the suite once, every design with a dumped netlist is
re-sent once per gate with that gate's equation edited (its first cube
duplicated — same function, different text, so the whole-design key misses
while the STG and every other gate's job keys stay put). The edited passes
must all run "fresh" (no design-cache hit), must each hit the STG-keyed
decomposition cache (decomp_hits grows by exactly the number of edits and
decompose_runs does not move — the netlist-only edits never rebuild the
global SG), must grow the gate-slice hit counter, and must produce reports
byte-identical to the same edits on a second, cold server process.
"""
import glob
import json
import shutil
import subprocess
import sys
import tempfile


def run_serve(serve, requests, warm=False, extra=None):
    """One sitime_serve process over `requests`; returns parsed lines."""
    command = (
        [serve, "--jobs", "2", "--admit", "1"]
        + (["--warm"] if warm else [])
        + (extra or [])
    )
    text = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run(
        command, input=text, capture_output=True, text=True, check=True
    )
    lines = [json.loads(line) for line in proc.stdout.strip().split("\n")]
    assert len(lines) == len(requests), (len(lines), len(requests))
    bad = [l for l in lines if not l["ok"]]
    assert not bad, bad
    return lines


def run_serve_then_kill(serve, extra, requests):
    """One sitime_serve process over `requests`, SIGKILLed (not drained)
    the moment the last response line is read. Models a crash/deploy: any
    state the server wanted to keep must already be durable on disk."""
    command = [serve, "--jobs", "2", "--admit", "1"] + extra
    proc = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        for request in requests:
            proc.stdin.write(json.dumps(request) + "\n")
        proc.stdin.flush()
        lines = [json.loads(proc.stdout.readline()) for _ in requests]
    finally:
        proc.kill()
        proc.wait()
    bad = [l for l in lines if not l["ok"]]
    assert not bad, bad
    return lines


def restart_check(serve, design_dir, cache_dir):
    designs = sorted(glob.glob(design_dir + "/*.g"))
    assert designs, f"no .g designs in {design_dir}"
    suite = [{"id": i, "design": path} for i, path in enumerate(designs)]
    extra = ["--cache-dir", cache_dir]

    # Pass 1: cold server with the persistent store, killed mid-flight.
    first = run_serve_then_kill(serve, extra, suite)
    not_fresh = [
        (l.get("id"), l["cache"]) for l in first if l["cache"] != "fresh"
    ]
    assert not not_fresh, f"cold pass not all fresh: {not_fresh}"
    stats = first[-1]["cache_stats"]
    assert stats["disk_writes"] == len(designs), stats
    assert stats["disk_write_errors"] == 0, stats
    spilled = glob.glob(cache_dir + "/*.sit")
    assert len(spilled) == len(designs), (len(spilled), len(designs))
    assert not glob.glob(cache_dir + "/*.tmp"), "temp files left behind"

    # Pass 2: a brand-new process over the same directory. Everything must
    # come back from disk: all hits, zero phase re-runs of ANY kind.
    second = run_serve(serve, suite, extra=extra)
    not_hit = [
        (l.get("id"), l["cache"]) for l in second if l["cache"] != "hit"
    ]
    assert not not_hit, f"restarted pass not all disk hits: {not_hit}"
    stats = second[-1]["cache_stats"]
    assert stats["disk_loads"] == len(designs), stats
    assert stats["disk_load_skips"] == 0, stats
    assert stats["disk_load_corrupt"] == 0, stats
    assert stats["decompose_runs"] == 0, stats
    assert stats["verify_runs"] == 0, stats
    assert stats["derive_runs"] == 0, stats
    assert stats["misses"] == 0, stats
    assert stats["hits"] == len(designs), stats

    for cold, warm in zip(first, second):
        assert cold["key"] == warm["key"], cold.get("id")
        assert cold["report"] == warm["report"], (
            f"report drift across restart for {cold.get('id')}"
        )

    print(
        f"serve restart OK: {len(designs)} designs spilled, server killed, "
        f"restart served all {len(designs)} from disk "
        f"(0 phase re-runs, reports byte-identical)"
    )
    return 0


def duplicate_first_cube(eqn, gate):
    """The editor's keystroke: duplicate the first cube of `gate`'s
    equation. The gate computes the same function, so the constraints are
    unchanged, but the canonical netlist text (and the whole-design key)
    differs."""
    lhs = gate + " = "
    at = eqn.index(lhs)
    rhs = at + len(lhs)
    plus = eqn.find("+", rhs)
    semi = eqn.index(";", rhs)
    end = semi if plus == -1 or semi < plus else plus
    first = eqn[rhs:end].strip()
    return eqn[:rhs] + first + " + " + eqn[rhs:]


def mutate_check(serve, design_dir):
    designs = sorted(glob.glob(design_dir + "/*.g"))
    assert designs, f"no .g designs in {design_dir}"
    suite = [{"id": i, "design": path} for i, path in enumerate(designs)]

    edits = []
    for eqn_path in sorted(glob.glob(design_dir + "/*.eqn")):
        with open(eqn_path) as f:
            eqn = f.read()
        with open(eqn_path[:-4] + ".g") as f:
            astg = f.read()
        gates = [
            line.split(" = ")[0]
            for line in eqn.splitlines()
            if " = " in line
        ]
        assert gates, f"no equations in {eqn_path}"
        for gate in gates:
            edits.append(
                {
                    "id": len(suite) + len(edits),
                    "design": {
                        "name": f"{eqn_path}#edit-{gate}",
                        "astg": astg,
                        "eqn": duplicate_first_cube(eqn, gate),
                    },
                }
            )
    assert edits, f"no dumped netlists (*.eqn) to mutate in {design_dir}"

    # Warm server: suite first (primes both cache levels), then the edits.
    lines = run_serve(serve, suite + edits)
    replay, edited = lines[: len(suite)], lines[len(suite):]
    # Every edit must MISS the design cache (the text changed) ...
    not_fresh = [
        (l.get("id"), l["cache"]) for l in edited if l["cache"] != "fresh"
    ]
    assert not not_fresh, f"edited designs not fresh: {not_fresh}"
    # ... while its unchanged gates hit the slice cache underneath.
    primed = replay[-1]["cache_stats"]
    after = edited[-1]["cache_stats"]
    gate_hits = after["gate_hits"] - primed["gate_hits"]
    assert gate_hits > 0, (primed, after)
    # The STG never changed, so EVERY edit reuses the suite pass's cached
    # decomposition — and no edit rebuilds the global SG (decompose_runs
    # counts actual decompose executions, and it must not move).
    decomp_hits = after["decomp_hits"] - primed["decomp_hits"]
    assert decomp_hits == len(edits), (decomp_hits, len(edits), after)
    assert after["decompose_runs"] == primed["decompose_runs"], (
        primed["decompose_runs"],
        after["decompose_runs"],
    )

    # Cold server: the same edits with nothing primed. The reports must be
    # byte-identical — mixing cached and fresh slices can never change an
    # output byte.
    cold = run_serve(serve, edits)
    for warm_line, cold_line in zip(edited, cold):
        assert warm_line["key"] == cold_line["key"], warm_line.get("id")
        assert warm_line["report"] == cold_line["report"], (
            f"report drift for edit {warm_line.get('id')}"
        )

    print(
        f"serve mutate OK: {len(suite)} designs replayed, "
        f"{len(edits)} single-gate edits all fresh with {decomp_hits} "
        f"decomposition reuses (no global-SG rebuild) and {gate_hits} "
        f"gate-slice hits, reports byte-identical to a cold server"
    )
    return 0


def main() -> int:
    serve = sys.argv[1]
    design_dir = sys.argv[2]
    warm = "--warm" in sys.argv[3:]
    if "--mutate" in sys.argv[3:]:
        return mutate_check(serve, design_dir)
    if "--cache-dir" in sys.argv[3:]:
        tail = sys.argv[3:]
        at = tail.index("--cache-dir")
        explicit = (
            tail[at + 1]
            if at + 1 < len(tail) and not tail[at + 1].startswith("--")
            else None
        )
        cache_dir = explicit or tempfile.mkdtemp(prefix="sitime_cache_")
        try:
            return restart_check(serve, design_dir, cache_dir)
        finally:
            if explicit is None:
                shutil.rmtree(cache_dir, ignore_errors=True)

    designs = sorted(glob.glob(design_dir + "/*.g"))
    assert designs, f"no .g designs in {design_dir}"
    requests = "".join(
        json.dumps({"id": i, "design": path}) + "\n"
        for i, path in enumerate(designs * 2)
    )

    # --admit 1 keeps the two passes strictly sequential so every repeat is
    # a plain "hit" (concurrent admission could legitimately coalesce).
    command = [serve, "--jobs", "2", "--admit", "1"] + (
        ["--warm"] if warm else []
    )
    proc = subprocess.run(
        command, input=requests, capture_output=True, text=True, check=True
    )
    lines = [json.loads(line) for line in proc.stdout.strip().split("\n")]
    assert len(lines) == 2 * len(designs), (len(lines), len(designs))
    bad = [l for l in lines if not l["ok"]]
    assert not bad, bad

    first, second = lines[: len(designs)], lines[len(designs):]
    if warm:
        not_hit = [(l["design"], l["cache"]) for l in first if l["cache"] != "hit"]
        assert not not_hit, f"warm pass 1 not all hits: {not_hit}"
    else:
        not_fresh = [
            (l["design"], l["cache"]) for l in first if l["cache"] != "fresh"
        ]
        assert not not_fresh, f"pass 1 not all fresh: {not_fresh}"
    not_hit = [(l["design"], l["cache"]) for l in second if l["cache"] != "hit"]
    assert not not_hit, f"pass 2 not all cache hits: {not_hit}"

    for a, b in zip(first, second):
        assert a["key"] == b["key"], (a["design"], a["key"], b["key"])
        assert a["report"] == b["report"], f"report drift for {a['design']}"
        assert a["speed_independent"] and b["speed_independent"], a["design"]

    # The dumped directory IS the embedded suite, so warming runs each
    # design exactly once and both replay passes must hit; without warming
    # pass 1 is the only source of misses.
    stats = second[-1]["cache_stats"]
    assert stats["misses"] == len(designs), stats
    assert stats["hits"] == len(designs) * (2 if warm else 1), stats

    print(
        f"serve replay OK: {len(designs)} designs x2, "
        f"second pass all cache hits, reports byte-identical "
        f"(warm={str(warm).lower()})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
