#!/usr/bin/env python3
"""Replay a dumped design directory through sitime_serve, twice, and assert
the cache contract: the first pass runs every flow fresh, the second pass is
answered entirely from the design cache with byte-identical report JSON.

Usage: serve_replay_check.py SERVE_BINARY DESIGN_DIR [--warm]

With --warm the server preloads the embedded benchmark suite first, so BOTH
passes must be all cache hits (the dumped directory is that same suite).
"""
import glob
import json
import subprocess
import sys


def main() -> int:
    serve = sys.argv[1]
    design_dir = sys.argv[2]
    warm = "--warm" in sys.argv[3:]

    designs = sorted(glob.glob(design_dir + "/*.g"))
    assert designs, f"no .g designs in {design_dir}"
    requests = "".join(
        json.dumps({"id": i, "design": path}) + "\n"
        for i, path in enumerate(designs * 2)
    )

    # --admit 1 keeps the two passes strictly sequential so every repeat is
    # a plain "hit" (concurrent admission could legitimately coalesce).
    command = [serve, "--jobs", "2", "--admit", "1"] + (
        ["--warm"] if warm else []
    )
    proc = subprocess.run(
        command, input=requests, capture_output=True, text=True, check=True
    )
    lines = [json.loads(line) for line in proc.stdout.strip().split("\n")]
    assert len(lines) == 2 * len(designs), (len(lines), len(designs))
    bad = [l for l in lines if not l["ok"]]
    assert not bad, bad

    first, second = lines[: len(designs)], lines[len(designs):]
    if warm:
        not_hit = [(l["design"], l["cache"]) for l in first if l["cache"] != "hit"]
        assert not not_hit, f"warm pass 1 not all hits: {not_hit}"
    else:
        not_fresh = [
            (l["design"], l["cache"]) for l in first if l["cache"] != "fresh"
        ]
        assert not not_fresh, f"pass 1 not all fresh: {not_fresh}"
    not_hit = [(l["design"], l["cache"]) for l in second if l["cache"] != "hit"]
    assert not not_hit, f"pass 2 not all cache hits: {not_hit}"

    for a, b in zip(first, second):
        assert a["key"] == b["key"], (a["design"], a["key"], b["key"])
        assert a["report"] == b["report"], f"report drift for {a['design']}"
        assert a["speed_independent"] and b["speed_independent"], a["design"]

    # The dumped directory IS the embedded suite, so warming runs each
    # design exactly once and both replay passes must hit; without warming
    # pass 1 is the only source of misses.
    stats = second[-1]["cache_stats"]
    assert stats["misses"] == len(designs), stats
    assert stats["hits"] == len(designs) * (2 if warm else 1), stats

    print(
        f"serve replay OK: {len(designs)} designs x2, "
        f"second pass all cache hits, reports byte-identical "
        f"(warm={str(warm).lower()})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
