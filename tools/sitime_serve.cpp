// sitime_serve — resident analysis server: flag parsing around
// svc::Server + svc::AnalysisService.
//
// The serving machinery (transports, shared bounded admission,
// per-connection response ordering, the {"stats": true} control path,
// graceful shutdown) lives in src/svc/server; the NDJSON request and
// response schema is documented there and in tools/README.md.
//
// Transports (combinable; no flag = stdin/stdout):
//   --socket PATH        Unix stream socket
//   --listen HOST:PORT   TCP (IPv4/IPv6; [addr]:port for IPv6 literals;
//                        port 0 = kernel-assigned, printed on startup);
//                        repeatable
// A Unix socket and TCP listener(s) can serve simultaneously from one
// process, sharing one design cache. Socket servers drain gracefully on
// SIGINT/SIGTERM: new connections are refused, in-flight requests finish
// and their responses are emitted before exit.
//
// Options:
//   --jobs N             default per-request (component × gate)
//                        parallelism (0 = one per hardware thread,
//                        default 1)
//   --admit N            concurrent requests in flight, across all
//                        connections (default 4)
//   --cache-mb N         design-cache byte budget in MiB (default 256;
//                        0 disables caching, single-flight still applies)
//   --warm               preload the embedded benchmark suite
//   --max-connections N  concurrent connection limit (default 256;
//                        0 = unlimited)
//   --max-requests N     per-connection request cap, a DoS backstop
//                        (default 0 = unlimited)
//   --idle-timeout-ms N  close socket connections idle this long
//                        (default 0 = never)
//   --write-timeout-ms N drop a response blocked this long on a client
//                        that stopped reading (default 30000; 0 = block
//                        forever)
//   --max-line-bytes N   longest accepted request line (default 4 MiB)
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "svc/analysis_service.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"

namespace {

struct ServeOptions {
  int jobs = 1;
  std::size_t cache_bytes = 256u << 20;
  bool warm = false;
  std::string socket_path;
  std::vector<std::string> listen_endpoints;
  sitime::svc::ServerOptions server;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sitime_serve [--jobs N] [--admit N] [--cache-mb N] [--warm]\n"
      "                    [--socket PATH] [--listen HOST:PORT]...\n"
      "                    [--max-connections N] [--max-requests N]\n"
      "                    [--idle-timeout-ms N] [--write-timeout-ms N]\n"
      "                    [--max-line-bytes N]\n"
      "reads one JSON request per line on stdin (or per socket/TCP\n"
      "connection), writes one JSON response per line; see\n"
      "tools/README.md\n");
  return 2;
}

// Graceful-shutdown plumbing: a signal handler cannot call
// svc::Server::stop() itself (not async-signal-safe), so it writes one
// byte into a self-pipe that a watcher thread blocks on.
int g_signal_pipe[2] = {-1, -1};

void notify_signal_pipe(int) {
  const char byte = 0;
  [[maybe_unused]] const ssize_t wrote =
      ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sitime;
  ServeOptions options;
  options.server.max_connections = 256;
  options.server.log_prefix = "sitime_serve";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (++i >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[i];
    };
    auto int_value = [&](const char* flag, long min, long max) -> long {
      const std::string text = value(flag);
      char* end = nullptr;
      const long parsed = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || parsed < min ||
          parsed > max) {
        std::fprintf(stderr, "error: %s needs an integer in [%ld, %ld]\n",
                     flag, min, max);
        std::exit(2);
      }
      return parsed;
    };
    if (arg == "--jobs" || arg == "-j") {
      options.jobs = static_cast<int>(int_value("--jobs", 0, 4096));
    } else if (arg == "--admit") {
      options.server.admit =
          static_cast<int>(int_value("--admit", 1, 4096));
    } else if (arg == "--cache-mb") {
      options.cache_bytes = static_cast<std::size_t>(
                                int_value("--cache-mb", 0, 1 << 20))
                            << 20;
    } else if (arg == "--warm") {
      options.warm = true;
    } else if (arg == "--socket") {
      options.socket_path = value("--socket");
    } else if (arg == "--listen") {
      options.listen_endpoints.push_back(value("--listen"));
    } else if (arg == "--max-connections") {
      options.server.max_connections =
          static_cast<int>(int_value("--max-connections", 0, 1 << 20));
    } else if (arg == "--max-requests") {
      options.server.max_requests_per_connection =
          int_value("--max-requests", 0, 1L << 40);
    } else if (arg == "--idle-timeout-ms") {
      options.server.idle_timeout_ms =
          static_cast<int>(int_value("--idle-timeout-ms", 0, 1 << 30));
    } else if (arg == "--write-timeout-ms") {
      options.server.write_timeout_ms =
          static_cast<int>(int_value("--write-timeout-ms", 0, 1 << 30));
    } else if (arg == "--max-line-bytes") {
      options.server.max_line_bytes = static_cast<std::size_t>(
          int_value("--max-line-bytes", 0, 1L << 32));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  svc::ServiceOptions service_options;
  service_options.cache_budget_bytes = options.cache_bytes;
  service_options.jobs = options.jobs;
  svc::AnalysisService service(service_options);

  if (options.warm) {
    const int loaded = service.warm_benchmark_suite();
    const svc::CacheStats stats = service.stats();
    std::fprintf(stderr,
                 "sitime_serve: warmed %d designs (%d resident, %zu bytes)\n",
                 loaded, stats.entries, stats.bytes);
  }

  svc::Server server(service, options.server);
  bool has_listener = false;
  try {
    if (!options.socket_path.empty()) {
      server.add_transport(
          std::make_unique<svc::UnixSocketTransport>(options.socket_path));
      has_listener = true;
    }
    for (const std::string& endpoint : options.listen_endpoints) {
      server.add_transport(std::make_unique<svc::TcpTransport>(
          svc::parse_listen_endpoint(endpoint)));
      has_listener = true;
    }
    if (!has_listener)
      server.add_transport(std::make_unique<svc::StdioTransport>());
    server.start();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sitime_serve: %s\n", error.what());
    return 1;
  }

  // Socket servers run until a signal asks for the graceful drain; a
  // stdio server simply ends at stdin EOF (its reader cannot be
  // unblocked, so no handler is installed).
  std::thread signal_watcher;
  if (has_listener && ::pipe(g_signal_pipe) == 0) {
    std::signal(SIGINT, notify_signal_pipe);
    std::signal(SIGTERM, notify_signal_pipe);
    signal_watcher = std::thread([&server] {
      char byte;
      while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      server.stop();
    });
  }

  server.wait();
  if (signal_watcher.joinable()) {
    notify_signal_pipe(0);  // wake the watcher if no signal ever fired
    signal_watcher.join();
  }
  return 0;
}
