// sitime_serve — resident analysis server over the svc::AnalysisService
// design cache.
//
// Reads newline-delimited JSON requests on stdin (or a Unix stream socket
// with --socket, any number of concurrent connections) and streams back one
// JSON response line per request, in per-connection request order, while up
// to --admit requests run concurrently on the shared thread pool (each
// fanning its (component × gate) jobs — and their OR-causality expansion
// subtasks — onto the same pool).
//
// Request schema (one object per line):
//   {"design": "path/to/STG.g"}              file-based design; a sibling
//                                            .eqn is picked up when present
//   {"design": {"astg": "...", "eqn": "...", "name": "..."}}
//                                            inline design (eqn optional ->
//                                            synthesize)
//   {"design": {"bench": "name"}}            embedded benchmark
//   {"stats": true}                          control request: cache counters
//                                            only, no analysis
// Optional fields: "eqn" (netlist file path, overrides the sibling),
// "mode" ("derive" default | "verify"), "jobs" (per-request override),
// "id" (echoed back verbatim in the response).
//
// Response line:
//   {"id": ..., "design": "...", "ok": true, "cache": "fresh"|"hit"|
//    "upgraded"|"coalesced", "phases_run": "decompose+verify+derive",
//    "key": "<content hash>", "seconds": ..., "speed_independent": true,
//    "report": {<canonical report JSON>}, "cache_stats": {...}}
// The "report" object is the deterministic canonical body: byte-identical
// for cached and fresh runs at any worker count. "cache_stats" is the
// live service counter block (volatile by nature); a {"stats": true}
// request returns the same block as {"id": ..., "ok": true, "stats":
// {...}} without touching the design cache. Failures come back as
// {"ok": false, "error": "..."} on the same line number as the request.
//
// Options:
//   --jobs N        default per-request (component × gate) parallelism
//                   (0 = one per hardware thread, default 1)
//   --admit N       concurrent requests in flight, across all connections
//                   (default 4)
//   --cache-mb N    design-cache byte budget in MiB (default 256; 0
//                   disables caching, single-flight still applies)
//   --warm          preload the embedded benchmark suite before serving
//   --socket PATH   serve connections on a Unix stream socket instead of
//                   stdin; connections are accepted concurrently, each
//                   with its own reader thread feeding the shared bounded
//                   admission
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "benchdata/benchmarks.hpp"
#include "core/report.hpp"
#include "svc/analysis_service.hpp"
#include "svc/json.hpp"

#include "design_io.hpp"  // shared tools helpers (sibling of this file)

namespace {

struct ServeOptions {
  int jobs = 1;
  int admit = 4;
  std::size_t cache_bytes = 256u << 20;
  bool warm = false;
  std::string socket_path;
};

int usage() {
  std::fprintf(stderr,
               "usage: sitime_serve [--jobs N] [--admit N] [--cache-mb N]\n"
               "                    [--warm] [--socket PATH]\n"
               "reads one JSON request per line on stdin (or per socket\n"
               "connection), writes one JSON response per line; see\n"
               "tools/README.md\n");
  return 2;
}

/// Renders an echoed "id" value (scalars only; anything else is dropped).
std::string render_id(const sitime::svc::JsonValue& id) {
  using Kind = sitime::svc::JsonValue::Kind;
  switch (id.kind()) {
    case Kind::string:
      return "\"" + sitime::core::json_escape(id.as_string()) + "\"";
    case Kind::number: {
      const double number = id.as_number();
      char buffer[32];
      // The float-to-integer cast is only defined inside long long range;
      // anything else (huge ids, fractions) is echoed as a double.
      if (number >= -9.2e18 && number <= 9.2e18 &&
          number == static_cast<double>(static_cast<long long>(number)))
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(number));
      else
        std::snprintf(buffer, sizeof(buffer), "%.17g", number);
      return buffer;
    }
    case Kind::boolean: return id.as_bool() ? "true" : "false";
    default: return "";
  }
}

/// Builds the service request from one parsed JSON request line.
sitime::svc::AnalysisRequest build_request(
    const sitime::svc::JsonValue& json) {
  using namespace sitime;
  svc::AnalysisRequest request;
  const svc::JsonValue& design = json.get("design");
  if (design.is_string()) {
    const std::string& path = design.as_string();
    request.name = path;
    request.astg = tools::read_file(path);
    std::string eqn_path = json.string_or("eqn", "");
    if (eqn_path.empty()) eqn_path = tools::sibling_eqn_path(path);
    if (!eqn_path.empty()) request.eqn = tools::read_file(eqn_path);
  } else if (design.is_object()) {
    const std::string bench_name = design.string_or("bench", "");
    if (!bench_name.empty()) {
      const auto& bench = benchdata::benchmark(bench_name);
      request.name = bench.name;
      request.astg = bench.astg;
      request.eqn = bench.eqn;
    } else {
      request.astg = design.string_or("astg", "");
      if (request.astg.empty())
        sitime::fail("request: design object needs 'astg' or 'bench'");
      request.eqn = design.string_or("eqn", "");
      request.name = design.string_or("name", "(inline)");
    }
  } else {
    sitime::fail("request: 'design' must be a path or an object");
  }
  const std::string mode = json.string_or("mode", "derive");
  if (mode == "verify")
    request.mode = svc::RequestMode::verify;
  else if (mode == "derive")
    request.mode = svc::RequestMode::derive;
  else
    sitime::fail("request: unknown mode '" + mode + "'");
  request.jobs = static_cast<int>(json.int_or("jobs", 0));
  return request;
}

void append_cache_stats(std::ostringstream& out,
                        const sitime::svc::CacheStats& stats) {
  out << "{\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
      << ",\"upgrades\":" << stats.upgrades
      << ",\"coalesced\":" << stats.coalesced
      << ",\"evictions\":" << stats.evictions
      << ",\"failures\":" << stats.failures
      << ",\"decompose_runs\":" << stats.decompose_runs
      << ",\"verify_runs\":" << stats.verify_runs
      << ",\"derive_runs\":" << stats.derive_runs
      << ",\"entries\":" << stats.entries << ",\"bytes\":" << stats.bytes
      << ",\"budget_bytes\":" << stats.budget_bytes
      << ",\"sg_entries\":" << stats.sg_cache_entries
      << ",\"sg_hits\":" << stats.sg_cache_hits
      << ",\"sg_misses\":" << stats.sg_cache_misses << "}";
}

/// Handles one request line; never throws. Returns the response line
/// (without the trailing newline).
std::string handle_line(sitime::svc::AnalysisService& service,
                        const std::string& line) {
  using namespace sitime;
  std::string id;
  std::string name;
  try {
    const svc::JsonValue json = svc::parse_json(line);
    id = render_id(json.get("id"));

    // Control request: {"stats": true} returns the live counters without
    // touching the design cache.
    const svc::JsonValue& stats_flag = json.get("stats");
    if (!stats_flag.is_null()) {
      if (!stats_flag.as_bool())
        sitime::fail("request: 'stats' must be true when present");
      std::ostringstream out;
      out << "{";
      if (!id.empty()) out << "\"id\":" << id << ",";
      out << "\"ok\":true,\"stats\":";
      append_cache_stats(out, service.stats());
      out << "}";
      return out.str();
    }

    svc::AnalysisRequest request = build_request(json);
    name = request.name;
    const svc::AnalysisResponse response = service.analyze(request);

    std::ostringstream out;
    out << "{";
    if (!id.empty()) out << "\"id\":" << id << ",";
    out << "\"design\":\"" << core::json_escape(name) << "\"";
    if (!response.ok) {
      out << ",\"ok\":false,\"error\":\""
          << core::json_escape(response.error) << "\"}";
      return out.str();
    }
    out << ",\"ok\":true,\"cache\":\"" << response.cache_state
        << "\",\"phases_run\":\"" << core::json_escape(response.phases_run)
        << "\",\"key\":\"" << response.key << "\"";
    char seconds[32];
    std::snprintf(seconds, sizeof(seconds), "%.6f", response.seconds);
    out << ",\"seconds\":" << seconds;
    out << ",\"speed_independent\":"
        << (response.speed_independent ? "true" : "false");
    if (!response.speed_independent)
      out << ",\"offender\":\""
          << core::json_escape(response.verify_offender) << "\"";
    if (response.canonical_json != nullptr)
      out << ",\"report\":" << *response.canonical_json;
    out << ",\"cache_stats\":";
    append_cache_stats(out, service.stats());
    out << "}";
    return out.str();
  } catch (const std::exception& error) {
    std::ostringstream out;
    out << "{";
    if (!id.empty()) out << "\"id\":" << id << ",";
    if (!name.empty())
      out << "\"design\":\"" << core::json_escape(name) << "\",";
    out << "\"ok\":false,\"error\":\"" << core::json_escape(error.what())
        << "\"}";
    return out.str();
  }
}

/// A line-oriented request/response transport (stdin/stdout or one
/// accepted socket connection).
class Channel {
 public:
  virtual ~Channel() = default;
  virtual bool read_line(std::string& line) = 0;
  virtual void write_line(const std::string& line) = 0;
};

class StdioChannel : public Channel {
 public:
  bool read_line(std::string& line) override {
    return static_cast<bool>(std::getline(std::cin, line));
  }
  void write_line(const std::string& line) override {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);  // stream responses as they become ready
  }
};

class SocketChannel : public Channel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override { ::close(fd_); }

  bool read_line(std::string& line) override {
    line.clear();
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;  // signal, not EOF
      if (got <= 0) {
        if (buffer_.empty()) return false;
        line.swap(buffer_);  // final unterminated line
        return true;
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  void write_line(const std::string& line) override {
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t wrote =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (wrote <= 0) return;  // client went away; drop the response
      sent += static_cast<std::size_t>(wrote);
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// One client connection: its transport plus the in-order emission state
/// (responses finish out of order on the shared workers; each connection
/// reorders its own).
struct Connection {
  explicit Connection(std::unique_ptr<Channel> transport)
      : channel(std::move(transport)) {}

  std::unique_ptr<Channel> channel;
  std::mutex mutex;
  std::condition_variable window_open;  // an emission slot freed
  std::map<long, std::string> ready;    // finished out-of-order responses
  long next_emit = 0;
  long sequence = 0;
  bool emitting = false;  // one emitter at a time keeps lines in order
};

/// The shared bounded admission: `admit` worker threads drain one global
/// request queue fed by every connection's reader thread, so total
/// concurrency is bounded whatever the number of clients. Each connection
/// additionally bounds its *unemitted* window to `admit`, so neither the
/// reorder buffers nor the read-ahead can grow without bound behind a slow
/// head-of-line request.
class AdmissionLoop {
 public:
  AdmissionLoop(sitime::svc::AnalysisService& service, int admit)
      : service_(service), admit_(admit < 1 ? 1 : admit) {
    workers_.reserve(admit_);
    for (int t = 0; t < admit_; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~AdmissionLoop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// The reader loop of one connection: admits its lines into the shared
  /// queue and returns once EOF is reached AND every admitted response has
  /// been emitted. Runs on the caller's thread; any number of connections
  /// may be served concurrently.
  void serve(const std::shared_ptr<Connection>& conn) {
    std::string line;
    while (conn->channel->read_line(line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      long seq;
      {
        std::unique_lock<std::mutex> lock(conn->mutex);
        conn->window_open.wait(lock, [&] {
          return conn->sequence - conn->next_emit < admit_;
        });
        seq = conn->sequence++;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.emplace_back(Job{conn, seq, std::move(line)});
      }
      work_ready_.notify_one();
    }
    // Drain: the workers still hold admitted lines of this connection.
    std::unique_lock<std::mutex> lock(conn->mutex);
    conn->window_open.wait(
        lock, [&] { return conn->next_emit == conn->sequence; });
  }

 private:
  struct Job {
    std::shared_ptr<Connection> conn;
    long seq = 0;
    std::string line;
  };

  void worker_loop() {
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock,
                         [&] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      std::string response = handle_line(service_, job.line);
      std::unique_lock<std::mutex> lock(job.conn->mutex);
      job.conn->ready.emplace(job.seq, std::move(response));
      flush_ready(*job.conn, lock);
    }
  }

  /// Drains every consecutive ready response of one connection, WRITING
  /// OUTSIDE THE LOCK so a slow reader (a stalled socket client) cannot
  /// stall the shared workers beyond the one carrying its response. The
  /// `emitting` flag makes whoever holds it the sole writer; responses
  /// that become ready meanwhile are picked up by its next sweep.
  static void flush_ready(Connection& conn,
                          std::unique_lock<std::mutex>& lock) {
    if (conn.emitting) return;  // the active emitter will sweep ours up
    conn.emitting = true;
    while (!conn.ready.empty() &&
           conn.ready.begin()->first == conn.next_emit) {
      std::vector<std::string> batch;
      while (!conn.ready.empty() &&
             conn.ready.begin()->first == conn.next_emit) {
        batch.push_back(std::move(conn.ready.begin()->second));
        conn.ready.erase(conn.ready.begin());
        ++conn.next_emit;
      }
      conn.window_open.notify_all();
      lock.unlock();
      for (const std::string& response : batch)
        conn.channel->write_line(response);
      lock.lock();
    }
    conn.emitting = false;
    // The drain predicate (next_emit == sequence) may have just turned
    // true with no further emission to signal it.
    conn.window_open.notify_all();
  }

  sitime::svc::AnalysisService& service_;
  const int admit_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<Job> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

int serve_socket(sitime::svc::AnalysisService& service,
                 const std::string& path, int admit) {
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("sitime_serve: socket");
    return 1;
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    std::fprintf(stderr, "sitime_serve: socket path too long\n");
    ::close(listener);
    return 2;
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror("sitime_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "sitime_serve: listening on %s\n", path.c_str());
  AdmissionLoop admission(service, admit);
  // Reader threads are detached so a long-running server does not
  // accumulate one joinable handle (stack + TCB) per connection ever
  // served; the tracker lets shutdown wait until every reader has left
  // `admission` before it is destroyed. The tracker is shared so a reader
  // finishing after the accept loop exits still has somewhere to signal.
  struct ReaderTracker {
    std::mutex mutex;
    std::condition_variable all_done;
    int active = 0;
  };
  const auto tracker = std::make_shared<ReaderTracker>();
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;  // signal, not a listener failure
      break;
    }
    // One reader thread per connection; all of them feed the same bounded
    // admission, so concurrent clients share the --admit budget instead of
    // queueing behind each other.
    auto conn = std::make_shared<Connection>(
        std::make_unique<SocketChannel>(fd));
    {
      std::lock_guard<std::mutex> lock(tracker->mutex);
      ++tracker->active;
    }
    std::thread([&admission, conn, tracker] {
      admission.serve(conn);
      std::lock_guard<std::mutex> lock(tracker->mutex);
      if (--tracker->active == 0) tracker->all_done.notify_all();
    }).detach();
  }
  {
    std::unique_lock<std::mutex> lock(tracker->mutex);
    tracker->all_done.wait(lock, [&] { return tracker->active == 0; });
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sitime;
  ServeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (++i >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[i];
    };
    auto int_value = [&](const char* flag, long min, long max) -> long {
      const std::string text = value(flag);
      char* end = nullptr;
      const long parsed = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || parsed < min ||
          parsed > max) {
        std::fprintf(stderr, "error: %s needs an integer in [%ld, %ld]\n",
                     flag, min, max);
        std::exit(2);
      }
      return parsed;
    };
    if (arg == "--jobs" || arg == "-j") {
      options.jobs = static_cast<int>(int_value("--jobs", 0, 4096));
    } else if (arg == "--admit") {
      options.admit = static_cast<int>(int_value("--admit", 1, 4096));
    } else if (arg == "--cache-mb") {
      options.cache_bytes = static_cast<std::size_t>(
                                int_value("--cache-mb", 0, 1 << 20))
                            << 20;
    } else if (arg == "--warm") {
      options.warm = true;
    } else if (arg == "--socket") {
      options.socket_path = value("--socket");
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  svc::ServiceOptions service_options;
  service_options.cache_budget_bytes = options.cache_bytes;
  service_options.jobs = options.jobs;
  svc::AnalysisService service(service_options);

  if (options.warm) {
    const int loaded = service.warm_benchmark_suite();
    const svc::CacheStats stats = service.stats();
    std::fprintf(stderr,
                 "sitime_serve: warmed %d designs (%d resident, %zu bytes)\n",
                 loaded, stats.entries, stats.bytes);
  }

  if (!options.socket_path.empty())
    return serve_socket(service, options.socket_path, options.admit);

  AdmissionLoop admission(service, options.admit);
  const auto conn =
      std::make_shared<Connection>(std::make_unique<StdioChannel>());
  admission.serve(conn);
  return 0;
}
