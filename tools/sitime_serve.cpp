// sitime_serve — resident analysis server: flag parsing around
// svc::Server + svc::AnalysisService.
//
// The serving machinery (transports, shared bounded admission,
// per-connection response ordering, the {"stats": true} control path,
// graceful shutdown) lives in src/svc/server; the NDJSON request and
// response schema is documented there and in tools/README.md.
//
// Transports (combinable; no flag = stdin/stdout):
//   --socket PATH        Unix stream socket
//   --listen HOST:PORT   TCP (IPv4/IPv6; [addr]:port for IPv6 literals;
//                        port 0 = kernel-assigned, printed on startup);
//                        repeatable
// A Unix socket and TCP listener(s) can serve simultaneously from one
// process, sharing one design cache. Socket servers drain gracefully on
// SIGINT/SIGTERM: new connections are refused, in-flight requests finish
// and their responses are emitted before exit.
//
// Options:
//   --jobs N             default per-request (component × gate)
//                        parallelism (0 = one per hardware thread,
//                        default 1)
//   --admit N            concurrent requests in flight, across all
//                        connections (default 4)
//   --cache-mb N         design-cache byte budget in MiB (default 256;
//                        0 disables caching, single-flight still applies)
//   --cache-dir DIR      persistent warm store: terminal design entries
//                        are spilled to DIR as they complete (crash-safe
//                        writes) and reloaded at boot, so a restarted
//                        server serves the same designs as pure hits
//                        with byte-identical reports; corrupted or
//                        stale-version files are deleted and their
//                        designs run cold (see tools/README.md)
//   --warm               preload the embedded benchmark suite
//   --max-connections N  concurrent connection limit (default 256;
//                        0 = unlimited)
//   --max-requests N     per-connection request cap, a DoS backstop
//                        (default 0 = unlimited)
//   --idle-timeout-ms N  close socket connections idle this long
//                        (default 0 = never)
//   --write-timeout-ms N drop a response blocked this long on a client
//                        that stopped reading (default 30000; 0 = block
//                        forever)
//   --max-line-bytes N   longest accepted request line (default 4 MiB)
//   --max-queue-ms N     shed requests that waited longer than this in
//                        the shared admission queue with an immediate
//                        "overloaded" response (default 0 = never)
//   --max-queue-depth N  shed requests arriving while this many are
//                        already queued (default 0 = unbounded)
//   --slow-ms N          log the span breakdown of any request that took
//                        at least N ms (queue wait included) to stderr
//                        (default 0 = off)
//   --metrics            one-shot: print the Prometheus metric catalog
//                        (after an optional --warm) to stdout and exit —
//                        the same text a running server returns for the
//                        {"metrics": true} control request
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "svc/analysis_service.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"

namespace {

struct ServeOptions {
  int jobs = 1;
  std::size_t cache_bytes = 256u << 20;
  std::string cache_dir;
  bool warm = false;
  bool metrics_once = false;
  std::string socket_path;
  std::vector<std::string> listen_endpoints;
  sitime::svc::ServerOptions server;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sitime_serve [--jobs N] [--admit N] [--cache-mb N]\n"
      "                    [--cache-dir DIR] [--warm]\n"
      "                    [--socket PATH] [--listen HOST:PORT]...\n"
      "                    [--max-connections N] [--max-requests N]\n"
      "                    [--idle-timeout-ms N] [--write-timeout-ms N]\n"
      "                    [--max-line-bytes N] [--max-queue-ms N]\n"
      "                    [--max-queue-depth N] [--slow-ms N] [--metrics]\n"
      "reads one JSON request per line on stdin (or per socket/TCP\n"
      "connection), writes one JSON response per line; see\n"
      "tools/README.md\n");
  return 2;
}

// Graceful-shutdown plumbing: a signal handler cannot call
// svc::Server::stop() itself (not async-signal-safe), so it writes one
// byte into a self-pipe that a watcher thread blocks on. The flag lets
// phases that run before the server exists (the --warm preload) observe
// the shutdown request too.
int g_signal_pipe[2] = {-1, -1};
std::atomic<bool> g_shutdown{false};

void notify_signal_pipe(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
  const char byte = 0;
  [[maybe_unused]] const ssize_t wrote =
      ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sitime;
  ServeOptions options;
  options.server.max_connections = 256;
  options.server.log_prefix = "sitime_serve";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (++i >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[i];
    };
    auto int_value = [&](const char* flag, long min, long max) -> long {
      const std::string text = value(flag);
      char* end = nullptr;
      const long parsed = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || parsed < min ||
          parsed > max) {
        std::fprintf(stderr, "error: %s needs an integer in [%ld, %ld]\n",
                     flag, min, max);
        std::exit(2);
      }
      return parsed;
    };
    if (arg == "--jobs" || arg == "-j") {
      options.jobs = static_cast<int>(int_value("--jobs", 0, 4096));
    } else if (arg == "--admit") {
      options.server.admit =
          static_cast<int>(int_value("--admit", 1, 4096));
    } else if (arg == "--cache-mb") {
      options.cache_bytes = static_cast<std::size_t>(
                                int_value("--cache-mb", 0, 1 << 20))
                            << 20;
    } else if (arg == "--cache-dir") {
      options.cache_dir = value("--cache-dir");
    } else if (arg == "--warm") {
      options.warm = true;
    } else if (arg == "--socket") {
      options.socket_path = value("--socket");
    } else if (arg == "--listen") {
      options.listen_endpoints.push_back(value("--listen"));
    } else if (arg == "--max-connections") {
      options.server.max_connections =
          static_cast<int>(int_value("--max-connections", 0, 1 << 20));
    } else if (arg == "--max-requests") {
      options.server.max_requests_per_connection =
          int_value("--max-requests", 0, 1L << 40);
    } else if (arg == "--idle-timeout-ms") {
      options.server.idle_timeout_ms =
          static_cast<int>(int_value("--idle-timeout-ms", 0, 1 << 30));
    } else if (arg == "--write-timeout-ms") {
      options.server.write_timeout_ms =
          static_cast<int>(int_value("--write-timeout-ms", 0, 1 << 30));
    } else if (arg == "--max-line-bytes") {
      options.server.max_line_bytes = static_cast<std::size_t>(
          int_value("--max-line-bytes", 0, 1L << 32));
    } else if (arg == "--max-queue-ms") {
      options.server.max_queue_ms =
          static_cast<int>(int_value("--max-queue-ms", 0, 1 << 30));
    } else if (arg == "--max-queue-depth") {
      options.server.max_queue_depth =
          static_cast<int>(int_value("--max-queue-depth", 0, 1 << 30));
    } else if (arg == "--slow-ms") {
      options.server.slow_ms =
          static_cast<int>(int_value("--slow-ms", 0, 1 << 30));
    } else if (arg == "--metrics") {
      options.metrics_once = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  const bool has_listener =
      !options.socket_path.empty() || !options.listen_endpoints.empty();

  // Socket servers run until a signal asks for the graceful drain; a
  // stdio server simply ends at stdin EOF (its reader cannot be
  // unblocked, so no handler is installed). The handlers go in BEFORE
  // the --warm preload, so a shutdown signal during warm stops between
  // designs instead of loading the rest of the suite first — the byte it
  // writes stays in the self-pipe, so a signal at any later point (even
  // before the watcher thread exists) still reaches server.stop().
  const bool handle_signals = has_listener && ::pipe(g_signal_pipe) == 0;
  if (handle_signals) {
    std::signal(SIGINT, notify_signal_pipe);
    std::signal(SIGTERM, notify_signal_pipe);
  }

  svc::ServiceOptions service_options;
  service_options.cache_budget_bytes = options.cache_bytes;
  service_options.jobs = options.jobs;
  service_options.cache_dir = options.cache_dir;
  svc::AnalysisService service(service_options);

  // Warm-start from the persistent store BEFORE --warm: designs already
  // on disk come back as pure hits, and the suite preload then computes
  // (and spills) only what the store was missing.
  if (!options.cache_dir.empty()) {
    const svc::DiskStore* store = service.disk_store();
    if (store == nullptr || !store->ok()) {
      std::fprintf(stderr, "sitime_serve: --cache-dir unusable: %s\n",
                   store != nullptr ? store->init_error().c_str()
                                    : "store not created");
      return 1;
    }
    const int loaded = service.warm_from_disk();
    const svc::CacheStats stats = service.stats();
    std::fprintf(stderr,
                 "sitime_serve: cache-dir '%s' loaded %d designs "
                 "(skipped %lld, corrupt %lld)\n",
                 options.cache_dir.c_str(), loaded, stats.disk_load_skips,
                 stats.disk_load_corrupt);
  }

  if (options.warm) {
    const int loaded = service.warm_benchmark_suite(
        handle_signals ? &g_shutdown : nullptr);
    const svc::CacheStats stats = service.stats();
    std::fprintf(stderr,
                 "sitime_serve: warmed %d designs (%d resident, %zu bytes)\n",
                 loaded, stats.entries, stats.bytes);
    if (g_shutdown.load(std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "sitime_serve: shutdown requested during warm; exiting\n");
      return 0;
    }
  }

  svc::Server server(service, options.server);

  // One-shot metric catalog: the Server's construction registered the
  // admission/queue metrics, so this prints the same families a running
  // server exposes through {"metrics": true} — warm first (--warm) for a
  // populated snapshot.
  if (options.metrics_once) {
    std::fputs(service.metrics().render_prometheus().c_str(), stdout);
    return 0;
  }

  try {
    if (!options.socket_path.empty())
      server.add_transport(
          std::make_unique<svc::UnixSocketTransport>(options.socket_path));
    for (const std::string& endpoint : options.listen_endpoints)
      server.add_transport(std::make_unique<svc::TcpTransport>(
          svc::parse_listen_endpoint(endpoint)));
    if (!has_listener)
      server.add_transport(std::make_unique<svc::StdioTransport>());
    server.start();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sitime_serve: %s\n", error.what());
    return 1;
  }

  std::thread signal_watcher;
  if (handle_signals) {
    signal_watcher = std::thread([&server] {
      char byte;
      while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      server.stop();
    });
  }

  server.wait();
  if (signal_watcher.joinable()) {
    notify_signal_pipe(0);  // wake the watcher if no signal ever fired
    signal_watcher.join();
  }
  return 0;
}
