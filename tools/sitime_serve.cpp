// sitime_serve — resident analysis server over the svc::AnalysisService
// design cache.
//
// Reads newline-delimited JSON requests on stdin (or a Unix stream socket
// with --socket) and streams back one JSON response line per request, in
// request order, while up to --admit requests run concurrently on the
// shared thread pool (each fanning its (component × gate) jobs onto the
// same pool).
//
// Request schema (one object per line):
//   {"design": "path/to/STG.g"}              file-based design; a sibling
//                                            .eqn is picked up when present
//   {"design": {"astg": "...", "eqn": "...", "name": "..."}}
//                                            inline design (eqn optional ->
//                                            synthesize)
//   {"design": {"bench": "name"}}            embedded benchmark
// Optional fields: "eqn" (netlist file path, overrides the sibling),
// "mode" ("derive" default | "verify"), "jobs" (per-request override),
// "id" (echoed back verbatim in the response).
//
// Response line:
//   {"id": ..., "design": "...", "ok": true, "cache": "fresh"|"hit"|
//    "coalesced", "key": "<content hash>", "seconds": ...,
//    "speed_independent": true, "report": {<canonical report JSON>},
//    "cache_stats": {...}}
// The "report" object is the deterministic canonical body: byte-identical
// for cached and fresh runs at any worker count. "cache_stats" is the
// live service counter block (volatile by nature). Failures come back as
// {"ok": false, "error": "..."} on the same line number as the request.
//
// Options:
//   --jobs N        default per-request (component × gate) parallelism
//                   (0 = one per hardware thread, default 1)
//   --admit N       concurrent requests in flight (default 4)
//   --cache-mb N    design-cache byte budget in MiB (default 256; 0
//                   disables caching, single-flight still applies)
//   --warm          preload the embedded benchmark suite before serving
//   --socket PATH   serve connections on a Unix stream socket instead of
//                   stdin (one connection at a time)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "benchdata/benchmarks.hpp"
#include "core/report.hpp"
#include "svc/analysis_service.hpp"
#include "svc/json.hpp"

#include "design_io.hpp"  // shared tools helpers (sibling of this file)

namespace {

struct ServeOptions {
  int jobs = 1;
  int admit = 4;
  std::size_t cache_bytes = 256u << 20;
  bool warm = false;
  std::string socket_path;
};

int usage() {
  std::fprintf(stderr,
               "usage: sitime_serve [--jobs N] [--admit N] [--cache-mb N]\n"
               "                    [--warm] [--socket PATH]\n"
               "reads one JSON request per line on stdin (or the socket),\n"
               "writes one JSON response per line; see tools/README.md\n");
  return 2;
}

/// Renders an echoed "id" value (scalars only; anything else is dropped).
std::string render_id(const sitime::svc::JsonValue& id) {
  using Kind = sitime::svc::JsonValue::Kind;
  switch (id.kind()) {
    case Kind::string:
      return "\"" + sitime::core::json_escape(id.as_string()) + "\"";
    case Kind::number: {
      const double number = id.as_number();
      char buffer[32];
      // The float-to-integer cast is only defined inside long long range;
      // anything else (huge ids, fractions) is echoed as a double.
      if (number >= -9.2e18 && number <= 9.2e18 &&
          number == static_cast<double>(static_cast<long long>(number)))
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(number));
      else
        std::snprintf(buffer, sizeof(buffer), "%.17g", number);
      return buffer;
    }
    case Kind::boolean: return id.as_bool() ? "true" : "false";
    default: return "";
  }
}

/// Builds the service request from one parsed JSON request line.
sitime::svc::AnalysisRequest build_request(
    const sitime::svc::JsonValue& json) {
  using namespace sitime;
  svc::AnalysisRequest request;
  const svc::JsonValue& design = json.get("design");
  if (design.is_string()) {
    const std::string& path = design.as_string();
    request.name = path;
    request.astg = tools::read_file(path);
    std::string eqn_path = json.string_or("eqn", "");
    if (eqn_path.empty()) eqn_path = tools::sibling_eqn_path(path);
    if (!eqn_path.empty()) request.eqn = tools::read_file(eqn_path);
  } else if (design.is_object()) {
    const std::string bench_name = design.string_or("bench", "");
    if (!bench_name.empty()) {
      const auto& bench = benchdata::benchmark(bench_name);
      request.name = bench.name;
      request.astg = bench.astg;
      request.eqn = bench.eqn;
    } else {
      request.astg = design.string_or("astg", "");
      if (request.astg.empty())
        sitime::fail("request: design object needs 'astg' or 'bench'");
      request.eqn = design.string_or("eqn", "");
      request.name = design.string_or("name", "(inline)");
    }
  } else {
    sitime::fail("request: 'design' must be a path or an object");
  }
  const std::string mode = json.string_or("mode", "derive");
  if (mode == "verify")
    request.mode = svc::RequestMode::verify;
  else if (mode == "derive")
    request.mode = svc::RequestMode::derive;
  else
    sitime::fail("request: unknown mode '" + mode + "'");
  request.jobs = static_cast<int>(json.int_or("jobs", 0));
  return request;
}

void append_cache_stats(std::ostringstream& out,
                        const sitime::svc::CacheStats& stats) {
  out << "{\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
      << ",\"coalesced\":" << stats.coalesced
      << ",\"evictions\":" << stats.evictions
      << ",\"failures\":" << stats.failures
      << ",\"entries\":" << stats.entries << ",\"bytes\":" << stats.bytes
      << ",\"budget_bytes\":" << stats.budget_bytes
      << ",\"sg_entries\":" << stats.sg_cache_entries
      << ",\"sg_hits\":" << stats.sg_cache_hits
      << ",\"sg_misses\":" << stats.sg_cache_misses << "}";
}

/// Handles one request line; never throws. Returns the response line
/// (without the trailing newline).
std::string handle_line(sitime::svc::AnalysisService& service,
                        const std::string& line) {
  using namespace sitime;
  std::string id;
  std::string name;
  try {
    const svc::JsonValue json = svc::parse_json(line);
    id = render_id(json.get("id"));
    svc::AnalysisRequest request = build_request(json);
    name = request.name;
    const svc::AnalysisResponse response = service.analyze(request);

    std::ostringstream out;
    out << "{";
    if (!id.empty()) out << "\"id\":" << id << ",";
    out << "\"design\":\"" << core::json_escape(name) << "\"";
    if (!response.ok) {
      out << ",\"ok\":false,\"error\":\""
          << core::json_escape(response.error) << "\"}";
      return out.str();
    }
    out << ",\"ok\":true,\"cache\":\"" << response.cache_state
        << "\",\"key\":\"" << response.key << "\"";
    char seconds[32];
    std::snprintf(seconds, sizeof(seconds), "%.6f", response.seconds);
    out << ",\"seconds\":" << seconds;
    out << ",\"speed_independent\":"
        << (response.speed_independent ? "true" : "false");
    if (!response.speed_independent)
      out << ",\"offender\":\""
          << core::json_escape(response.verify_offender) << "\"";
    if (response.canonical_json != nullptr)
      out << ",\"report\":" << *response.canonical_json;
    out << ",\"cache_stats\":";
    append_cache_stats(out, service.stats());
    out << "}";
    return out.str();
  } catch (const std::exception& error) {
    std::ostringstream out;
    out << "{";
    if (!id.empty()) out << "\"id\":" << id << ",";
    if (!name.empty())
      out << "\"design\":\"" << core::json_escape(name) << "\",";
    out << "\"ok\":false,\"error\":\"" << core::json_escape(error.what())
        << "\"}";
    return out.str();
  }
}

/// A line-oriented request/response transport (stdin/stdout or one
/// accepted socket connection).
class Channel {
 public:
  virtual ~Channel() = default;
  virtual bool read_line(std::string& line) = 0;
  virtual void write_line(const std::string& line) = 0;
};

class StdioChannel : public Channel {
 public:
  bool read_line(std::string& line) override {
    return static_cast<bool>(std::getline(std::cin, line));
  }
  void write_line(const std::string& line) override {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);  // stream responses as they become ready
  }
};

class SocketChannel : public Channel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override { ::close(fd_); }

  bool read_line(std::string& line) override {
    line.clear();
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;  // signal, not EOF
      if (got <= 0) {
        if (buffer_.empty()) return false;
        line.swap(buffer_);  // final unterminated line
        return true;
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  void write_line(const std::string& line) override {
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t wrote =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (wrote <= 0) return;  // client went away; drop the response
      sent += static_cast<std::size_t>(wrote);
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// The request loop: up to `admit` requests run concurrently on dedicated
/// request threads (NOT pool tasks — a request may block in the service's
/// single-flight wait, which is only safe outside pool-task context; the
/// per-request flow jobs still fan out onto the shared pool). Responses
/// are emitted strictly in request order through a reorder buffer, and
/// admission is bounded by the *unemitted* window: while a slow
/// head-of-line request runs, at most `admit` requests are outstanding, so
/// neither the reorder buffer nor the read-ahead can grow without bound.
void serve_channel(sitime::svc::AnalysisService& service, Channel& channel,
                   int admit) {
  using namespace sitime;
  if (admit <= 1) {
    std::string line;
    while (channel.read_line(line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      channel.write_line(handle_line(service, line));
    }
    return;
  }

  std::mutex mutex;
  std::condition_variable work_ready;  // workers: a request was queued
  std::condition_variable window_open;  // reader: an emission slot freed
  std::deque<std::pair<long, std::string>> pending;  // admitted requests
  std::map<long, std::string> ready;  // finished out-of-order responses
  long next_emit = 0;
  long sequence = 0;
  bool done_reading = false;
  bool emitting = false;  // one emitter at a time keeps lines in order

  // Drains every consecutive ready response, WRITING OUTSIDE THE LOCK so a
  // slow reader (a stalled --socket client) cannot stall the mutex every
  // worker and the admission loop need. The `emitting` flag makes whoever
  // holds it the sole writer; responses that become ready meanwhile are
  // picked up by its next sweep.
  auto flush_ready = [&](std::unique_lock<std::mutex>& lock) {
    if (emitting) return;  // the active emitter will sweep ours up
    emitting = true;
    while (!ready.empty() && ready.begin()->first == next_emit) {
      std::vector<std::string> batch;
      while (!ready.empty() && ready.begin()->first == next_emit) {
        batch.push_back(std::move(ready.begin()->second));
        ready.erase(ready.begin());
        ++next_emit;
      }
      window_open.notify_all();
      lock.unlock();
      for (const std::string& response : batch)
        channel.write_line(response);
      lock.lock();
    }
    emitting = false;
  };

  std::vector<std::thread> workers;
  workers.reserve(admit);
  for (int t = 0; t < admit; ++t)
    workers.emplace_back([&] {
      std::unique_lock<std::mutex> lock(mutex);
      while (true) {
        work_ready.wait(lock,
                        [&] { return done_reading || !pending.empty(); });
        if (pending.empty()) return;  // done_reading and drained
        const long seq = pending.front().first;
        const std::string line = std::move(pending.front().second);
        pending.pop_front();
        lock.unlock();
        std::string response = handle_line(service, line);
        lock.lock();
        ready.emplace(seq, std::move(response));
        flush_ready(lock);
      }
    });

  std::string line;
  while (channel.read_line(line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::unique_lock<std::mutex> lock(mutex);
    window_open.wait(lock, [&] { return sequence - next_emit < admit; });
    pending.emplace_back(sequence++, std::move(line));
    work_ready.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    done_reading = true;
  }
  work_ready.notify_all();
  for (std::thread& worker : workers) worker.join();
  std::unique_lock<std::mutex> lock(mutex);
  flush_ready(lock);  // everything is finished; drain any stragglers
}

int serve_socket(sitime::svc::AnalysisService& service,
                 const std::string& path, int admit) {
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("sitime_serve: socket");
    return 1;
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    std::fprintf(stderr, "sitime_serve: socket path too long\n");
    ::close(listener);
    return 2;
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror("sitime_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "sitime_serve: listening on %s\n", path.c_str());
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;  // signal, not a listener failure
      break;
    }
    SocketChannel channel(fd);
    serve_channel(service, channel, admit);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sitime;
  ServeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (++i >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[i];
    };
    auto int_value = [&](const char* flag, long min, long max) -> long {
      const std::string text = value(flag);
      char* end = nullptr;
      const long parsed = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || parsed < min ||
          parsed > max) {
        std::fprintf(stderr, "error: %s needs an integer in [%ld, %ld]\n",
                     flag, min, max);
        std::exit(2);
      }
      return parsed;
    };
    if (arg == "--jobs" || arg == "-j") {
      options.jobs = static_cast<int>(int_value("--jobs", 0, 4096));
    } else if (arg == "--admit") {
      options.admit = static_cast<int>(int_value("--admit", 1, 4096));
    } else if (arg == "--cache-mb") {
      options.cache_bytes = static_cast<std::size_t>(
                                int_value("--cache-mb", 0, 1 << 20))
                            << 20;
    } else if (arg == "--warm") {
      options.warm = true;
    } else if (arg == "--socket") {
      options.socket_path = value("--socket");
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  svc::ServiceOptions service_options;
  service_options.cache_budget_bytes = options.cache_bytes;
  service_options.jobs = options.jobs;
  svc::AnalysisService service(service_options);

  if (options.warm) {
    const int loaded = service.warm_benchmark_suite();
    const svc::CacheStats stats = service.stats();
    std::fprintf(stderr,
                 "sitime_serve: warmed %d designs (%d resident, %zu bytes)\n",
                 loaded, stats.entries, stats.bytes);
  }

  if (!options.socket_path.empty())
    return serve_socket(service, options.socket_path, options.admit);

  StdioChannel channel;
  serve_channel(service, channel, options.admit);
  return 0;
}
