#!/usr/bin/env python3
"""Exercise sitime_serve --socket with concurrent connections.

Starts the server on a Unix socket, connects CLIENTS clients at once, and
has each send the same benchmark requests plus a {"stats": true} control
request. Asserts:
  - every connection gets one response per request, in ITS OWN request
    order (the "id" echoes must come back monotonically per connection);
  - the server accepted the connections concurrently (all clients hold
    their sockets open until every one of them has connected and written,
    so a serial server would deadlock this test);
  - the stats control request answers with the counter block, and the
    design requests of N identical clients produced exactly one fresh flow
    run (misses == number of distinct designs) — the rest were hits or
    coalesced on the shared cache;
  - every design response carries the canonical report, byte-identical
    across connections.

Usage: socket_smoke.py SERVE_BINARY [--clients N]
"""
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

DESIGNS = ["imec-ram-read-sbuf", "adfast", "ebergen"]


def client(path: str, barrier: threading.Barrier, out: list, index: int):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    for _ in range(100):
        try:
            sock.connect(path)
            break
        except (FileNotFoundError, ConnectionRefusedError):
            time.sleep(0.05)
    else:
        raise RuntimeError("server socket never came up")
    # Everyone connects before anyone sends: a one-connection-at-a-time
    # server cannot pass this barrier for every client.
    barrier.wait(timeout=30)
    requests = [
        {"id": f"c{index}-{i}", "design": {"bench": name}}
        for i, name in enumerate(DESIGNS)
    ]
    requests.append({"id": f"c{index}-stats", "stats": True})
    payload = "".join(json.dumps(r) + "\n" for r in requests)
    sock.sendall(payload.encode())
    sock.shutdown(socket.SHUT_WR)
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    sock.close()
    out[index] = [json.loads(line) for line in data.decode().splitlines()]


def main() -> int:
    serve = sys.argv[1]
    clients = 4
    if "--clients" in sys.argv:
        clients = int(sys.argv[sys.argv.index("--clients") + 1])

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "serve.sock")
        proc = subprocess.Popen(
            [serve, "--jobs", "2", "--admit", "4", "--socket", path],
            stderr=subprocess.DEVNULL,
        )
        try:
            barrier = threading.Barrier(clients)
            results = [None] * clients
            threads = [
                threading.Thread(
                    target=client, args=(path, barrier, results, i)
                )
                for i in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "client hung (serial accept loop?)"
            # Every client finished: one final connection reads the settled
            # counters (a per-client stats snapshot races with the others).
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(path)
            sock.sendall(b'{"stats": true}\n')
            sock.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
            sock.close()
            final_stats = json.loads(data.decode())["stats"]
        finally:
            proc.terminate()
            proc.wait()

    reports = {}
    for i, lines in enumerate(results):
        assert lines is not None and len(lines) == len(DESIGNS) + 1, (
            i,
            lines,
        )
        # Per-connection order: the id echoes come back in request order.
        ids = [l["id"] for l in lines]
        expected = [f"c{i}-{j}" for j in range(len(DESIGNS))] + [
            f"c{i}-stats"
        ]
        assert ids == expected, (ids, expected)
        for line in lines[: len(DESIGNS)]:
            assert line["ok"], line
            assert line["speed_independent"], line
            reports.setdefault(line["design"], set()).add(
                json.dumps(line["report"], sort_keys=True)
            )
        stats_line = lines[-1]
        assert stats_line["ok"] and "stats" in stats_line, stats_line

    # Byte-identical canonical reports across every connection.
    for design, variants in reports.items():
        assert len(variants) == 1, f"report drift for {design}"
    # One fresh flow run per distinct design, however many clients raced.
    stats = final_stats
    assert stats["misses"] == len(DESIGNS), stats
    assert stats["decompose_runs"] == len(DESIGNS), stats
    assert (
        stats["hits"] + stats["coalesced"]
        == (clients - 1) * len(DESIGNS)
    ), stats

    print(
        f"socket smoke OK: {clients} concurrent connections, "
        f"{len(DESIGNS)} designs, per-connection order preserved, "
        f"misses={stats['misses']} hits={stats['hits']} "
        f"coalesced={stats['coalesced']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
