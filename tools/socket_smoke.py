#!/usr/bin/env python3
"""Exercise sitime_serve with concurrent connections over a parameterized
transport (Unix socket or loopback TCP).

Starts the server on the chosen transport, connects CLIENTS clients at
once, and has each send the same benchmark requests plus a
{"stats": true} control request. Asserts:
  - every connection gets one response per request, in ITS OWN request
    order (the "id" echoes must come back monotonically per connection);
  - the server accepted the connections concurrently (all clients hold
    their sockets open until every one of them has connected and written,
    so a serial server would deadlock this test);
  - the stats control request answers with the counter block, and the
    design requests of N identical clients produced exactly one fresh flow
    run (misses == number of distinct designs) — the rest were hits or
    coalesced on the shared cache;
  - every design response carries the canonical report, byte-identical
    across connections AND byte-identical to a stdin-transport run of the
    same requests;
  - SIGTERM drains gracefully: the server exits 0, not by being killed.

For TCP the server is started on 127.0.0.1:0 and the kernel-assigned port
is parsed from its "listening on tcp 127.0.0.1:PORT" startup line —
exactly how a deployment against an ephemeral port would find it.

A watchdog kills the server and fails loudly if the whole run exceeds the
deadline, instead of hanging the CI job when a response never arrives.

Usage: socket_smoke.py SERVE_BINARY [--transport unix|tcp] [--clients N]
       [--deadline SECONDS]
"""
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

DESIGNS = ["imec-ram-read-sbuf", "adfast", "ebergen"]


def start_watchdog(proc, deadline_s: float) -> threading.Timer:
    """Fail the whole run loudly if it outlives the deadline."""

    def fire():
        sys.stderr.write(
            f"socket_smoke: WATCHDOG: no result after {deadline_s}s; "
            "killing the server and failing\n"
        )
        sys.stderr.flush()
        try:
            proc.kill()
        except OSError:
            pass
        os._exit(3)

    timer = threading.Timer(deadline_s, fire)
    timer.daemon = True
    timer.start()
    return timer


def wait_for_listening(proc, transport: str):
    """Reads the server's startup line; returns the TCP port (or None for
    unix) and leaves a drain thread on the remaining stderr."""
    port = None
    pattern = re.compile(r"listening on tcp \S*?:(\d+)\s*$")
    while True:
        line = proc.stderr.readline()
        if not line:
            raise RuntimeError("server exited before listening")
        sys.stderr.write(line)
        if transport == "tcp":
            match = pattern.search(line)
            if match:
                port = int(match.group(1))
                break
        elif "listening on unix" in line:
            break
    # Keep stderr flowing so the server can never block on a full pipe.
    drain = threading.Thread(
        target=lambda: [None for _ in proc.stderr], daemon=True
    )
    drain.start()
    return port


def connect(transport: str, address):
    if transport == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    for _ in range(100):
        try:
            sock.connect(address)
            return sock
        except (FileNotFoundError, ConnectionRefusedError):
            time.sleep(0.05)
    raise RuntimeError("server never came up")


def request_payload(index: int) -> str:
    requests = [
        {"id": f"c{index}-{i}", "design": {"bench": name}}
        for i, name in enumerate(DESIGNS)
    ]
    requests.append({"id": f"c{index}-stats", "stats": True})
    return "".join(json.dumps(r) + "\n" for r in requests)


def client(
    transport: str,
    address,
    barrier: threading.Barrier,
    out: list,
    index: int,
):
    sock = connect(transport, address)
    # Everyone connects before anyone sends: a one-connection-at-a-time
    # server cannot pass this barrier for every client.
    barrier.wait(timeout=30)
    sock.sendall(request_payload(index).encode())
    sock.shutdown(socket.SHUT_WR)
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    sock.close()
    out[index] = [json.loads(line) for line in data.decode().splitlines()]


def one_shot(transport: str, address, payload: str) -> list:
    sock = connect(transport, address)
    sock.sendall(payload.encode())
    sock.shutdown(socket.SHUT_WR)
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    sock.close()
    return [json.loads(line) for line in data.decode().splitlines()]


def stdin_reports(serve: str) -> dict:
    """The canonical reports of a stdin-transport run of the same designs:
    the byte-identity reference for every other transport."""
    payload = "".join(
        json.dumps({"id": i, "design": {"bench": name}}) + "\n"
        for i, name in enumerate(DESIGNS)
    )
    run = subprocess.run(
        [serve, "--jobs", "2"],
        input=payload,
        capture_output=True,
        text=True,
        check=True,
        timeout=120,
    )
    reports = {}
    for line in run.stdout.splitlines():
        response = json.loads(line)
        assert response["ok"], response
        reports[response["design"]] = json.dumps(
            response["report"], sort_keys=True
        )
    assert sorted(reports) == sorted(DESIGNS), reports
    return reports


def main() -> int:
    serve = sys.argv[1]
    transport = "unix"
    clients = 4
    deadline = 240.0
    if "--transport" in sys.argv:
        transport = sys.argv[sys.argv.index("--transport") + 1]
    if "--clients" in sys.argv:
        clients = int(sys.argv[sys.argv.index("--clients") + 1])
    if "--deadline" in sys.argv:
        deadline = float(sys.argv[sys.argv.index("--deadline") + 1])
    assert transport in ("unix", "tcp"), transport

    with tempfile.TemporaryDirectory() as tmp:
        if transport == "unix":
            address = os.path.join(tmp, "serve.sock")
            flags = ["--socket", address]
        else:
            flags = ["--listen", "127.0.0.1:0"]
        proc = subprocess.Popen(
            [serve, "--jobs", "2", "--admit", "4"] + flags,
            stderr=subprocess.PIPE,
            text=True,
        )
        watchdog = start_watchdog(proc, deadline)
        try:
            port = wait_for_listening(proc, transport)
            if transport == "tcp":
                address = ("127.0.0.1", port)

            barrier = threading.Barrier(clients)
            results = [None] * clients
            threads = [
                threading.Thread(
                    target=client,
                    args=(transport, address, barrier, results, i),
                )
                for i in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "client hung (serial accept loop?)"
            # Every client finished: one final connection reads the settled
            # counters (a per-client stats snapshot races with the others).
            final_stats = one_shot(transport, address, '{"stats": true}\n')[
                0
            ]["stats"]

            # Graceful shutdown: SIGTERM must drain and exit 0.
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=60)
            assert returncode == 0, f"non-graceful exit: {returncode}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    reports = {}
    for i, lines in enumerate(results):
        assert lines is not None and len(lines) == len(DESIGNS) + 1, (
            i,
            lines,
        )
        # Per-connection order: the id echoes come back in request order.
        ids = [l["id"] for l in lines]
        expected = [f"c{i}-{j}" for j in range(len(DESIGNS))] + [
            f"c{i}-stats"
        ]
        assert ids == expected, (ids, expected)
        for line in lines[: len(DESIGNS)]:
            assert line["ok"], line
            assert line["speed_independent"], line
            reports.setdefault(line["design"], set()).add(
                json.dumps(line["report"], sort_keys=True)
            )
        stats_line = lines[-1]
        assert stats_line["ok"] and "stats" in stats_line, stats_line

    # Byte-identical canonical reports across every connection.
    for design, variants in reports.items():
        assert len(variants) == 1, f"report drift for {design}"
    # ... and byte-identical to the stdin transport serving the same
    # designs (a fresh process: same canonical bytes from a cold cache).
    for design, report in stdin_reports(serve).items():
        assert reports[design] == {report}, f"transport drift for {design}"
    # One fresh flow run per distinct design, however many clients raced.
    stats = final_stats
    assert stats["misses"] == len(DESIGNS), stats
    assert stats["decompose_runs"] == len(DESIGNS), stats
    assert (
        stats["hits"] + stats["coalesced"]
        == (clients - 1) * len(DESIGNS)
    ), stats

    watchdog.cancel()
    print(
        f"socket smoke OK ({transport}): {clients} concurrent connections, "
        f"{len(DESIGNS)} designs, per-connection order preserved, "
        f"stdin-identical reports, graceful SIGTERM, "
        f"misses={stats['misses']} hits={stats['hits']} "
        f"coalesced={stats['coalesced']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
